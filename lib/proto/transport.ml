module Engine = Soda_sim.Engine
module Rng = Soda_sim.Rng
module Stats = Soda_sim.Stats
module Trace = Soda_sim.Trace
module Recorder = Soda_obs.Recorder
module Event = Soda_obs.Event
module Causal = Soda_obs.Causal
module Bus = Soda_net.Bus
module Nic = Soda_net.Nic
module Pool = Soda_net.Pool
module Crc16 = Soda_net.Crc16
module Pattern = Soda_base.Pattern
module Cost = Soda_base.Cost_model
module Types = Soda_base.Types

type completion =
  | Comp_accepted of { arg : int; put_transferred : int; get_data : bytes }
  | Comp_unadvertised
  | Comp_crashed
  | Comp_discovered of int list

type accept_outcome = Acc_success of bytes | Acc_cancelled | Acc_crashed

type delivery_decision = [ `Deliver | `Busy | `Unadvertised ]

type callbacks = {
  deliver_request :
    src:int ->
    tid:int ->
    pattern:Pattern.t ->
    arg:int ->
    put_size:int ->
    get_size:int ->
    delivery_decision;
  complete_request : tid:int -> completion -> unit;
  advertised : Pattern.t -> bool;
  classify_unknown_tid : int -> [ `Completed | `Stale ];
}

(* ---- outbound reliable machinery -------------------------------------- *)

type send_outcome =
  | Out_acked
  | Out_error of Wire.err_code
  | Out_cancel_reply of bool
  | Out_timeout

type send_kind = K_request | K_accept | K_put_data | K_cancel

(* One launched reliable message occupying a send-window slot. The slot
   ([sp_seq]) is fixed at launch; a retransmission reuses it. *)
type sent_pkt = {
  sp_kind : send_kind;
  sp_tid : int;
  sp_body : Wire.body;
  sp_seq : int;
  sp_run : bool;
      (* launched with nothing outstanding: this slot is the window base and
         every earlier slot is acked, so the packet is flagged as a run start
         for no-record receivers (window > 1 only) *)
  mutable sp_retries : int;
  mutable sp_busy_attempts : int;
  mutable sp_waiting_busy : bool;  (* window 1 only: parked between BUSY retries *)
  mutable sp_timer : Engine.event_id option;
  mutable sp_finished : bool;
  mutable sp_sent_at : int;
      (* virtual time of the most recent actual emission; 0 = never sent.
         Feeds the RTT estimator only when the packet was emitted exactly
         once (Karn's rule: a retransmitted packet's ack is ambiguous) *)
  sp_done : send_outcome -> unit;
}

type pending_send = {
  ps_kind : send_kind;
  ps_tid : int;
  ps_body : Wire.body;
  ps_done : send_outcome -> unit;
  ps_retries : int;  (* preserved when a parked send is requeued *)
  ps_busy : int;
  ps_ready_at : int;  (* earliest launch time (BUSY backoff); 0 = immediately *)
}

(* Replay record for one consumed incoming sequence number: the message's
   identity (for duplicate disambiguation after the sender reuses a slot)
   and the response to replay when its duplicate arrives. At window 1
   exactly one record is kept, reproducing the seed's single
   last-consumed/last-response pair. *)
type consumed_rec = {
  cr_key : (int * int) option;  (* (kind code, tid) of the consumed message *)
  mutable cr_response : Wire.body option;
}

type conn = {
  peer : int;
  (* sender half: [send_base] is the oldest unacknowledged slot, [send_next]
     the next slot to assign; at most [Cost.transport_window] apart. *)
  mutable send_base : int;
  mutable send_next : int;
  mutable outstanding : sent_pkt list;  (* oldest first *)
  sendq : pending_send Queue.t;
  mutable wake_timer : Engine.event_id option;  (* queued-send backoff wake-up *)
  mutable deferred_ack : int option;
      (* a cumulative ack held back by an unresolved CANCEL slot *)
  (* receiver half *)
  mutable recv_base : int option;  (* expected next incoming seq; None = take any *)
  mutable consumed : (int * consumed_rec) list;  (* newest first *)
  mutable recv_buf : Wire.t list;
      (* held packets, nearest first: out-of-order arrivals waiting for the
         gap at [recv_base], plus (pipelined kernels) an in-order REQUEST
         deferred while the input buffer is full *)
  mutable ack_owed : int option;  (* cumulative ack to send, piggybacked or timed *)
  mutable ack_timer : Engine.event_id option;
  mutable expiry_timer : Engine.event_id option;
  mutable expiry_deadline : int;
      (* virtual time before which the delta-t record must not expire;
         pushed forward on every touch WITHOUT rescheduling [expiry_timer]
         (a cancel + heap push per received packet) — the timer re-arms
         itself for the remainder when it fires early *)
  (* bounding the pipelined hold: the head-of-window REQUEST currently
     deferred on a full input buffer, and how many of its retransmissions
     we have swallowed while holding it *)
  mutable held_pkt : Wire.t option;
  mutable held_retries : int;
  (* congestion control (windowed transports with aimd on): effective
     send window = min(cwnd, window); Jacobson estimator state in float
     microseconds, srtt = 0.0 until the first Karn-clean sample *)
  mutable cwnd : float;
  mutable srtt_us : float;
  mutable rttvar_us : float;
  mutable cwnd_cut_at : int;
      (* last multiplicative decrease; a burst of timer expiries within
         one RTO counts as a single loss event *)
}

(* ---- requester-side transaction records -------------------------------- *)

type req_state = Rq_sent | Rq_delivered | Rq_done

type out_req = {
  or_tid : int;
  or_dst : int;
  or_put : bytes;
  or_get_size : int;
  or_submit_us : int;  (* trap time, for the completion-latency histogram *)
  mutable or_state : req_state;
  mutable or_probe_timer : Engine.event_id option;
  mutable or_probe_misses : int;
  mutable or_probe_outstanding : bool;
  mutable or_cancel_pending : (bool -> unit) option;
      (* a CANCEL blocked until the server's state is known (§5.2.3) *)
}

type discover_req = {
  dr_tid : int;
  dr_max : int;
  mutable dr_mids : int list;  (* reverse order *)
  mutable dr_timer : Engine.event_id option;
}

(* ---- server-side transaction records ----------------------------------- *)

type accept_ctx = {
  ac_put_transferred : int;
  mutable ac_need_data : bool;
  mutable ac_awaiting_ack : bool;
  mutable ac_received : bytes;
  mutable ac_done : bool;
  mutable ac_data_timer : Engine.event_id option;
  ac_on_done : accept_outcome -> unit;
}

type srv_state =
  | Srv_buffered
  | Srv_delivered
  | Srv_accepting of accept_ctx
  | Srv_completed
  | Srv_cancelled

type srv_txn = {
  st_src : int;
  st_tid : int;
  st_put_size : int;
  st_get_size : int;
  mutable st_put_data : bytes option;
  mutable st_state : srv_state;
  mutable st_gc : Engine.event_id option;
}

type buffered_request = {
  br_src : int;
  br_tid : int;
  br_pattern : Pattern.t;
  br_arg : int;
  br_put_size : int;
  br_get_size : int;
}

type t = {
  engine : Engine.t;
  bus : Bus.t;
  mid : int;
  cost : Cost.t;
  trace : Trace.t;  (* the network's shared structured-event recorder *)
  actor_name : string;
  stats : Stats.t;
  rng : Rng.t;
  mutable nic : Nic.t option;
  mutable cb : callbacks option;
  conns : (int, conn) Hashtbl.t;
  out_reqs : (int, out_req) Hashtbl.t;
  discovers : (int, discover_req) Hashtbl.t;
  (* Broadcast frames are not covered by the per-connection seq/ack
     machinery, so a bus-level duplication replays them verbatim. Responder
     side of DISCOVER remembers recently answered (src, tid) pairs and
     drops the replay instead of scheduling a second staggered reply. *)
  seen_discovers : (int * int, unit) Hashtbl.t;
  srv_txns : (int * int, srv_txn) Hashtbl.t;
  mutable buffered : buffered_request option;  (* pipelined input buffer *)
  mutable epoch : int;  (* bumped on reset; stale deferred events are dropped *)
  (* Causal identity per live transaction: the requester registers the
     minted context at trap time, the server adopts a child span at
     first sight of a context-carrying packet. Keyed by tid (globally
     unique mints), populated only when the recorder runs causal. *)
  tid_causal : (int, Causal.ctx) Hashtbl.t;
  hot : hot_cells;
}

(* Backing cells of the per-packet stats, fetched once at [create]: every
   packet bumps two counters and four time accumulators on each side, and
   the string-keyed lookups were a measurable slice of the packet cost at
   scale. [sent_by_kind]/[recv_by_kind] are indexed by [body_index]. *)
and hot_cells = {
  c_sent_total : int ref;
  c_recv_total : int ref;
  sent_by_kind : int ref array;
  recv_by_kind : int ref array;
  t_transmission : int ref;
  t_protocol : int ref;
  t_conn_timer : int ref;
  t_retrans_timer : int ref;
  packet_cpu : int;  (* packet_protocol_us + conn_timer_us + retrans_timer_us *)
}

let mid t = t.mid
let stats t = t.stats
let cost t = t.cost

let callbacks t =
  match t.cb with
  | Some cb -> cb
  | None -> failwith "Transport: callbacks not set"

let actor t = t.actor_name

(* Structured-event emission: one branch when tracing is off; the payload
   is only built under the guard, so a quiet run allocates nothing. *)
let tracing t = Recorder.tracing t.trace

(* Every event that names a tid is stamped with that transaction's causal
   context (when one is registered): the whole transport instruments
   itself through this one chokepoint. *)
let event t kind =
  let ctx =
    match Event.tid kind with
    | Some tid -> Hashtbl.find_opt t.tid_causal tid
    | None -> None
  in
  Recorder.emit t.trace ?ctx ~time_us:(Engine.now t.engine) ~mid:t.mid
    ~actor:t.actor_name kind

(* Causal registration: the kernel calls [register_causal] at trap time
   (requester side); the server side adopts a child span on first rx of a
   context-carrying packet for a tid it has not seen. *)
let register_causal t ~tid ctx = Hashtbl.replace t.tid_causal tid ctx

let causal_ctx t ~tid = Hashtbl.find_opt t.tid_causal tid

let forget_causal t ~tid = Hashtbl.remove t.tid_causal tid

(* Schedule an engine event that is dropped if the node resets meanwhile. *)
let defer t ~delay fn =
  let epoch = t.epoch in
  Engine.schedule ~tag:"proto" t.engine ~delay (fun () -> if t.epoch = epoch then fn ())

(* Charge kernel CPU for one packet event and attribute it (§5.5 breakdown). *)
let packet_cpu_us t =
  let h = t.hot in
  h.t_protocol := !(h.t_protocol) + t.cost.Cost.packet_protocol_us;
  h.t_conn_timer := !(h.t_conn_timer) + t.cost.Cost.conn_timer_us;
  h.t_retrans_timer := !(h.t_retrans_timer) + t.cost.Cost.retrans_timer_us;
  h.packet_cpu

(* ---- window geometry ---------------------------------------------------- *)

(* At window 1 the sequence space collapses to {0,1} and every computation
   below reduces to the seed's alternating-bit flip, bit for bit. *)
let win t = Cost.transport_window t.cost
let sspace t = Cost.seq_space t.cost
let dist t base x = (x - base + sspace t) mod sspace t
let seq_next t s = (s + 1) mod sspace t
let seq_prev t s = (s - 1 + sspace t) mod sspace t

(* How many replay records to keep: cover the whole "behind the window"
   region (everything but the window itself), so a merely-delayed duplicate
   always finds its record and is never mistaken for slot reuse. At window 1
   this is exactly one record -- the seed's single last-consumed pair. *)
let max_consumed t = max 1 (sspace t - 1)

(* Is congestion control live on this transport? Window-1 runs always
   behave exactly like the seed's alternating bit, AIMD knob or not. *)
let aimd_on t = t.cost.Cost.aimd && win t > 1

(* Effective send window: min(cwnd, peer receive window, cost-model cap).
   The bus pins one window per medium (Bus.claim_seq_window), so the
   local cost-model window IS the peer's receive window. *)
let eff_win t conn =
  if aimd_on t then max 1 (min (win t) (int_of_float conn.cwnd)) else win t

(* ---- connection records ------------------------------------------------ *)

let conn_active conn =
  conn.outstanding <> []
  || (not (Queue.is_empty conn.sendq))
  || conn.ack_owed <> None || conn.recv_buf <> []

(* Lazy expiry: every packet touches the record, and cancelling plus
   re-scheduling the timer per touch cost a heap push/pop per packet. The
   deadline lives in [expiry_deadline]; the armed event fires at some
   stale deadline, notices it moved, and re-arms for the remainder — the
   record still expires at exactly last-touch + record_expiry_us. *)
let rec arm_expiry t conn =
  let delay = Cost.record_expiry_us t.cost in
  conn.expiry_deadline <- Engine.now t.engine + delay;
  if conn.expiry_timer = None then
    conn.expiry_timer <- Some (defer t ~delay (fun () -> expiry_fired t conn))

and expiry_fired t conn =
  conn.expiry_timer <- None;
  let now = Engine.now t.engine in
  if now < conn.expiry_deadline then
    conn.expiry_timer <-
      Some (defer t ~delay:(conn.expiry_deadline - now) (fun () -> expiry_fired t conn))
  else if conn_active conn then arm_expiry t conn
  else begin
    Trace.record t.trace ~now ~actor:(actor t)
      "delta-t record for peer %d expired (take any SN)" conn.peer;
    Stats.incr t.stats "deltat.records_expired";
    Hashtbl.remove t.conns conn.peer
  end

let conn_for t peer =
  match Hashtbl.find_opt t.conns peer with
  | Some c -> c
  | None ->
    let c =
      {
        peer;
        send_base = 0;
        send_next = 0;
        outstanding = [];
        sendq = Queue.create ();
        wake_timer = None;
        deferred_ack = None;
        recv_base = None;
        consumed = [];
        recv_buf = [];
        ack_owed = None;
        ack_timer = None;
        expiry_timer = None;
        expiry_deadline = 0;
        held_pkt = None;
        held_retries = 0;
        cwnd = Cost.cwnd_init t.cost;
        srtt_us = 0.0;
        rttvar_us = 0.0;
        cwnd_cut_at = 0;
      }
    in
    Hashtbl.replace t.conns peer c;
    Trace.record t.trace ~now:(Engine.now t.engine) ~actor:(actor t)
      "delta-t record created for peer %d" peer;
    Stats.incr t.stats "deltat.records_created";
    arm_expiry t c;
    c

let touch t conn = arm_expiry t conn

(* ---- raw packet emission ----------------------------------------------- *)

(* Per-kind counter names and the matching [body_index] order: the seed's
   [Printf.sprintf "pkt.sent.%s" (kind_name body)] allocated a fresh
   string per packet on both the send and receive hot paths; now the kind
   indexes a cached cell array. *)
let kind_names =
  [| "REQ"; "ACCEPT"; "DATA"; "ACK"; "BUSY"; "ERR"; "CANCEL"; "CANCEL_R"; "PROBE";
     "PROBE_R"; "DISCOVER"; "DISCOVER_R" |]

let body_index body =
  match body with
  | Wire.Request _ -> 0
  | Wire.Accept _ -> 1
  | Wire.Put_data _ -> 2
  | Wire.Ack -> 3
  | Wire.Busy _ -> 4
  | Wire.Error _ -> 5
  | Wire.Cancel_request _ -> 6
  | Wire.Cancel_reply _ -> 7
  | Wire.Probe _ -> 8
  | Wire.Probe_reply _ -> 9
  | Wire.Discover _ -> 10
  | Wire.Discover_reply _ -> 11

let pkt_of_body body =
  match body with
  | Wire.Request _ -> Event.P_request
  | Wire.Accept _ -> Event.P_accept
  | Wire.Put_data _ -> Event.P_put_data
  | Wire.Ack -> Event.P_ack
  | Wire.Busy _ -> Event.P_busy
  | Wire.Error _ -> Event.P_error
  | Wire.Cancel_request _ -> Event.P_cancel
  | Wire.Cancel_reply _ -> Event.P_cancel_reply
  | Wire.Probe _ -> Event.P_probe
  | Wire.Probe_reply _ -> Event.P_probe_reply
  | Wire.Discover _ -> Event.P_discover
  | Wire.Discover_reply _ -> Event.P_discover_reply

let tid_of_body body =
  match body with
  | Wire.Request { tid; _ }
  | Wire.Accept { tid; _ }
  | Wire.Put_data { tid; _ }
  | Wire.Busy { tid }
  | Wire.Error { tid; _ }
  | Wire.Cancel_request { tid }
  | Wire.Cancel_reply { tid; _ }
  | Wire.Probe { tid }
  | Wire.Probe_reply { tid; _ }
  | Wire.Discover { tid; _ }
  | Wire.Discover_reply { tid } -> tid
  | Wire.Ack -> Event.no_tid

(* Emit a packet to [dst], picking up any owed acknowledgement (piggyback,
   §5.2.3). The kernel CPU cost is charged before the NIC transmits. *)
let emit t ~dst ?(reliable = false) ?(seq = 0) ?(run = false) ?force_ack body =
  let nic = match t.nic with Some n -> n | None -> failwith "Transport: no NIC" in
  let ack =
    match force_ack with
    | Some _ as a -> a
    | None ->
      (match dst with
       | `Peer peer ->
         let conn = conn_for t peer in
         let owed = conn.ack_owed in
         if owed <> None then begin
           conn.ack_owed <- None;
           (match conn.ack_timer with
            | Some id ->
              Engine.cancel t.engine id;
              conn.ack_timer <- None
            | None -> ())
         end;
         owed
       | `Broadcast -> None)
  in
  let pkt = { Wire.src = t.mid; reliable; seq; ack; run; body } in
  let size = Wire.encoded_size pkt in
  let cpu = packet_cpu_us t in
  let tx = Bus.transmission_time_us t.bus ~payload_bytes:size in
  t.hot.t_transmission := !(t.hot.t_transmission) + tx;
  Stdlib.incr t.hot.c_sent_total;
  Stdlib.incr t.hot.sent_by_kind.(body_index body);
  if tracing t then
    event t
      (Event.Tx
         {
           tid = tid_of_body body;
           peer = (match dst with `Peer p -> p | `Broadcast -> Event.broadcast_peer);
           pkt = pkt_of_body body;
           bytes = size;
           seq;
           retry = (match body with Wire.Request { retry; _ } -> retry | _ -> false);
         });
  (* Encode straight into a pooled frame buffer (payload + CRC trailer) and
     seal it in place; ownership passes to the bus at send_wire time, which
     releases the buffer after the frame's last delivery. If the deferred
     send is squashed by a kernel reset the buffer is simply GC-reclaimed
     (the pool is a cache, not an accounting authority). *)
  let wire = Pool.acquire (Bus.pool t.bus) (size + 2) in
  let written = Wire.encode_into pkt wire ~off:0 in
  assert (written = size);
  Crc16.seal wire ~len:written;
  (* The sending span's causal identity rides the frame out of band;
     wire bytes are already encoded above and unaffected. *)
  let ctx = Hashtbl.find_opt t.tid_causal (tid_of_body body) in
  ignore
    (defer t ~delay:cpu (fun () ->
         match dst with
         | `Peer peer -> Nic.send_wire nic ?ctx ~dst:peer wire
         | `Broadcast -> Nic.broadcast_wire nic ?ctx wire))

(* The cumulative acknowledgement we can assert right now: the last
   in-order consumed sequence number. *)
let cum_ack t conn =
  match conn.recv_base with Some b -> Some (seq_prev t b) | None -> None

(* A response to a consumed reliable message: remember it on the consumed
   slot for duplicate replay, and let it carry the owed ack. *)
let respond_consumed t conn cr body =
  cr.cr_response <- Some body;
  emit t ~dst:(`Peer conn.peer) body

(* ---- owed acknowledgements --------------------------------------------- *)

let owe_ack ?(extra_grace = 0) t conn seq =
  conn.ack_owed <- Some seq;
  if conn.ack_timer = None then
    conn.ack_timer <-
      Some
        (defer t ~delay:(t.cost.Cost.ack_grace_us + extra_grace) (fun () ->
             conn.ack_timer <- None;
             if conn.ack_owed <> None then begin
               Stats.incr t.stats "pkt.standalone_acks";
               emit t ~dst:(`Peer conn.peer) Wire.Ack
             end))

let replay_response t conn cr =
  Stats.incr t.stats "pkt.duplicates";
  Trace.record t.trace ~now:(Engine.now t.engine) ~actor:(actor t)
    "duplicate from peer %d; replaying response" conn.peer;
  if conn.ack_owed <> None then begin
    (* Our ack is still within its grace window; quell the retransmission
       with an immediate standalone ack. *)
    emit t ~dst:(`Peer conn.peer) Wire.Ack
  end
  else begin
    match cr.cr_response, cum_ack t conn with
    | Some body, ack -> emit t ~dst:(`Peer conn.peer) ?force_ack:ack body
    | None, Some a -> emit t ~dst:(`Peer conn.peer) ~force_ack:a Wire.Ack
    | None, None -> ()
  end

(* ---- sliding-window sending --------------------------------------------- *)

(* ---- congestion control (AIMD + Jacobson RTT, windowed only) ----------- *)

let cwnd_note t conn ~reason =
  Stats.sample t.stats "net.cwnd" (int_of_float conn.cwnd);
  if tracing t then
    event t
      (Event.Cwnd_change
         { peer = conn.peer; cwnd = int_of_float conn.cwnd;
           in_flight = List.length conn.outstanding; reason })

(* Fold one acked packet into the RTT estimator. Karn's rule: a packet
   that was ever retransmitted (or re-emitted after a BUSY) has an
   ambiguous ack and must not sample. *)
let rtt_sample_sp t conn sp =
  if aimd_on t && sp.sp_retries = 0 && sp.sp_busy_attempts = 0 && sp.sp_sent_at > 0
  then begin
    let sample = Engine.now t.engine - sp.sp_sent_at in
    if sample >= 0 then begin
      let srtt, rttvar =
        Cost.rtt_update t.cost ~srtt_us:conn.srtt_us ~rttvar_us:conn.rttvar_us
          ~sample_us:sample
      in
      conn.srtt_us <- srtt;
      conn.rttvar_us <- rttvar;
      Stats.sample t.stats "net.rtt_us" sample;
      if tracing t then
        event t
          (Event.Rtt_sample
             { peer = conn.peer; sample_us = sample; srtt_us = int_of_float srtt;
               rttvar_us = int_of_float rttvar })
    end
  end

(* Additive increase: one cumulative ack covering only never-retransmitted
   packets grows cwnd by the cost model's increment (capped at W). *)
let cwnd_on_clean_ack t conn acked =
  if
    aimd_on t && acked <> []
    && List.for_all (fun sp -> sp.sp_retries = 0 && sp.sp_busy_attempts = 0) acked
  then begin
    let before = int_of_float conn.cwnd in
    conn.cwnd <- Cost.aimd_increase t.cost ~cwnd:conn.cwnd;
    if int_of_float conn.cwnd <> before then cwnd_note t conn ~reason:"ack"
  end

(* Multiplicative decrease on retransmission-timer expiry. A burst of
   expiries within one RTO is a single loss event (one halving), or a
   full window's worth of simultaneous timeouts would collapse cwnd to
   the floor in one step. *)
let cwnd_on_loss t conn =
  if aimd_on t then begin
    let now = Engine.now t.engine in
    let rto = Cost.rto_us t.cost ~srtt_us:conn.srtt_us ~rttvar_us:conn.rttvar_us in
    if now - conn.cwnd_cut_at >= rto then begin
      conn.cwnd_cut_at <- now;
      let before = int_of_float conn.cwnd in
      conn.cwnd <- Cost.aimd_decrease t.cost ~cwnd:conn.cwnd;
      if int_of_float conn.cwnd <> before then cwnd_note t conn ~reason:"loss"
    end
  end

let retrans_delay t conn sp =
  let base =
    float_of_int t.cost.Cost.retrans_interval_us
    *. (t.cost.Cost.retrans_backoff ** float_of_int sp.sp_retries)
  in
  (* Adaptive floor: once the estimator has a sample, never fire before
     srtt + 4 rttvar (with the same per-retry backoff). Under incast the
     static schedule undershoots the queueing delay and every client
     retransmits spuriously; the estimator absorbs it. The static formula
     below remains a lower bound, so an adaptive sender never fires
     EARLIER than the fixed-schedule one did. *)
  let base =
    if aimd_on t && conn.srtt_us > 0.0 then
      Float.max base
        (float_of_int
           (Cost.rto_us t.cost ~srtt_us:conn.srtt_us ~rttvar_us:conn.rttvar_us)
         *. (t.cost.Cost.retrans_backoff ** float_of_int sp.sp_retries))
    else base
  in
  (* A 2000-byte frame holds the 1 Mbit medium for ~16 ms, and the expected
     acknowledgement path includes the peer's data copies and (for a
     REQUEST) the whole accept turn-around; the timeout must comfortably
     exceed all of it or every large transfer retransmits spuriously. *)
  let tx bytes = Bus.transmission_time_us t.bus ~payload_bytes:(bytes + 40) in
  let copy bytes = Cost.data_copy_us t.cost ~bytes in
  let turnaround =
    t.cost.Cost.ack_grace_us + t.cost.Cost.accept_trap_us + t.cost.Cost.context_switch_us
    + (4 * t.cost.Cost.packet_protocol_us)
  in
  let extra =
    match sp.sp_body with
    | Wire.Request { data; get_size; _ } ->
      let d = Bytes.length data in
      (2 * tx d) + (2 * copy d) + tx get_size + copy get_size + turnaround
    | Wire.Accept { data; put_transferred; _ } ->
      (* the ack usually rides the next REQUEST, which carries a comparable
         put payload: allow for its copy and transmission too *)
      let d = Bytes.length data in
      (2 * tx d) + (2 * copy d) + (2 * copy put_transferred) + tx put_transferred
      + turnaround
    | Wire.Put_data { data; _ } ->
      let d = Bytes.length data in
      (2 * tx d) + (2 * copy d) + turnaround
    | _ -> 2 * tx 0
  in
  let jitter = Rng.float t.rng (base *. 0.25) in
  int_of_float (base +. jitter) + extra

let busy_delay t sp =
  let base =
    float_of_int t.cost.Cost.busy_retry_us
    *. (t.cost.Cost.busy_retry_backoff ** float_of_int (sp.sp_busy_attempts - 1))
  in
  let capped = min base (float_of_int t.cost.Cost.busy_retry_max_us) in
  let jitter = Rng.float t.rng (capped *. 0.1) in
  int_of_float (capped +. jitter)

let body_for_transmission sp =
  match sp.sp_body with
  | Wire.Request r when sp.sp_retries + sp.sp_busy_attempts > 0 ->
    (* Data rides only on the first transmission (§5.2.3). *)
    Wire.Request
      {
        tid = r.tid;
        pattern = r.pattern;
        arg = r.arg;
        put_size = r.put_size;
        get_size = r.get_size;
        data = Bytes.empty;
        retry = true;
      }
  | body -> body

let queue_push_front queue x =
  let tmp = Queue.create () in
  Queue.push x tmp;
  Queue.transfer queue tmp;
  Queue.transfer tmp queue

(* First pending send whose BUSY backoff has matured, preserving queue
   order otherwise (a ready DATA may overtake a backing-off REQUEST). *)
let pop_ready q now =
  let skipped = Queue.create () in
  let found = ref None in
  while !found = None && not (Queue.is_empty q) do
    let p = Queue.pop q in
    if p.ps_ready_at <= now then found := Some p else Queue.push p skipped
  done;
  Queue.transfer q skipped;
  Queue.transfer skipped q;
  !found

let next_ready_at q = Queue.fold (fun acc p -> min acc p.ps_ready_at) max_int q

(* The item [pop_ready] would return, without removing it. *)
let peek_ready q now =
  Queue.fold
    (fun acc p ->
      match acc with Some _ -> acc | None -> if p.ps_ready_at <= now then Some p else None)
    None q

let remove_outstanding conn sp =
  conn.outstanding <- List.filter (fun p -> p != sp) conn.outstanding

let cancel_sp_timer t sp =
  match sp.sp_timer with
  | Some id ->
    Engine.cancel t.engine id;
    sp.sp_timer <- None
  | None -> ()

let rec transmit_sent t conn sp =
  let attempt = sp.sp_retries + sp.sp_busy_attempts in
  if attempt > 0 then begin
    Stats.incr t.stats "pkt.retransmissions";
    (* separate the timer-expiry retransmissions (the congestion signal
       AIMD reacts to) from BUSY re-emissions (handler flow control) *)
    if sp.sp_retries > 0 then Stats.incr t.stats "pkt.retransmissions.timer";
    if tracing t then
      event t
        (Event.Retransmit
           { tid = sp.sp_tid; peer = conn.peer; pkt = pkt_of_body sp.sp_body; attempt })
  end;
  let body = body_for_transmission sp in
  (* The kernel copies the client buffer into the output buffer as part of
     sending (§5.2): data-bearing transmissions pay one copy here, in the
     transmit critical path. *)
  let data_bytes =
    match body with
    | Wire.Request { data; _ } | Wire.Accept { data; _ } | Wire.Put_data { data; _ } ->
      Bytes.length data
    | _ -> 0
  in
  let copy_us = if data_bytes > 0 then Cost.data_copy_us t.cost ~bytes:data_bytes else 0 in
  if copy_us > 0 then Stats.add_time t.stats (Cost.label Cost.Protocol) copy_us;
  if copy_us = 0 then begin
    sp.sp_sent_at <- Engine.now t.engine;
    emit t ~dst:(`Peer conn.peer) ~reliable:true ~seq:sp.sp_seq ~run:sp.sp_run body;
    arm_retrans t conn sp
  end
  else begin
    (* The imminent emission will carry any owed ack; hold the standalone
       ack back while the output buffer is being filled. *)
    (match conn.ack_timer with
     | Some id when conn.ack_owed <> None ->
       Engine.cancel t.engine id;
       conn.ack_timer <- None
     | Some _ | None -> ());
    ignore
      (defer t ~delay:copy_us (fun () ->
           if not sp.sp_finished then begin
             sp.sp_sent_at <- Engine.now t.engine;
             emit t ~dst:(`Peer conn.peer) ~reliable:true ~seq:sp.sp_seq ~run:sp.sp_run
               body;
             arm_retrans t conn sp
           end
           else if conn.ack_owed <> None then
             (* the emission was cancelled; release the held ack *)
             owe_ack t conn (Option.get conn.ack_owed)))
  end

and arm_retrans t conn sp =
  cancel_sp_timer t sp;
  let delay = retrans_delay t conn sp in
  sp.sp_timer <-
    Some
      (defer t ~delay (fun () ->
           sp.sp_timer <- None;
           if not sp.sp_finished then begin
             (* the timer expiring IS the loss signal: halve cwnd (at
                most once per RTO) whether we retry or give up *)
             cwnd_on_loss t conn;
             if sp.sp_retries >= t.cost.Cost.max_retrans then
               finish_sent t conn sp Out_timeout
             else begin
               sp.sp_retries <- sp.sp_retries + 1;
               transmit_sent t conn sp
             end
           end))

(* Remove a slot WITHOUT advancing the window base: timeouts and
   unadvertised rejections mean the peer never consumed the sequence
   number, so it is reused for the next message once the window empties
   (the seed's unflipped bit, generalised). *)
and finish_sent t conn sp outcome =
  if not sp.sp_finished then begin
    sp.sp_finished <- true;
    cancel_sp_timer t sp;
    remove_outstanding conn sp;
    if conn.outstanding = [] then conn.send_next <- conn.send_base;
    sp.sp_done outcome;
    start_next t conn
  end

(* A cumulative acknowledgement: the peer consumed every slot up to and
   including [a]. A slot held by an unresolved CANCEL stops the walk — a
   CANCEL is resolved by its Cancel_reply body, not the bare ack — and the
   remainder is parked in [deferred_ack]. *)
and apply_cum_ack t conn a =
  let extent = dist t conn.send_base conn.send_next in
  let d = dist t conn.send_base a in
  if extent > 0 && d < extent then begin
    let acked = ref [] in
    let covered = ref 0 in
    (try
       for off = 0 to d do
         let sq = (conn.send_base + off) mod sspace t in
         match
           List.find_opt
             (fun p -> p.sp_seq = sq && not p.sp_finished)
             conn.outstanding
         with
         | Some sp when sp.sp_kind = K_cancel ->
           if off < d then conn.deferred_ack <- Some a;
           raise Exit
         | Some sp -> acked := sp :: !acked; incr covered
         | None -> incr covered (* slot vacated by a timed-out message *)
       done
     with Exit -> ());
    if !covered > 0 then begin
      List.iter
        (fun sp ->
          sp.sp_finished <- true;
          cancel_sp_timer t sp)
        !acked;
      conn.outstanding <- List.filter (fun p -> not p.sp_finished) conn.outstanding;
      conn.send_base <- (conn.send_base + !covered) mod sspace t;
      if conn.outstanding = [] then conn.send_next <- conn.send_base;
      if win t > 1 && tracing t then
        event t
          (Event.Window_advance
             { peer = conn.peer; base = conn.send_base;
               in_flight = List.length conn.outstanding });
      List.iter (rtt_sample_sp t conn) !acked;
      cwnd_on_clean_ack t conn !acked;
      List.iter
        (fun sp ->
          if tracing t then
            event t
              (Event.Acked { tid = sp.sp_tid; peer = conn.peer; pkt = pkt_of_body sp.sp_body });
          sp.sp_done Out_acked)
        (List.rev !acked);
      start_next t conn
    end
  end

(* The peer consumed [sp]'s slot (and, implicitly, everything before it)
   but answered with a semantic response — ERROR, a windowed BUSY, or a
   CANCEL reply — rather than a plain ack. Advance the window past it and
   hand the outcome to [k]. *)
and resolve_consumed t conn sp k =
  if not sp.sp_finished then begin
    apply_cum_ack t conn (seq_prev t sp.sp_seq);
    sp.sp_finished <- true;
    cancel_sp_timer t sp;
    remove_outstanding conn sp;
    if conn.send_base = sp.sp_seq then begin
      conn.send_base <- seq_next t sp.sp_seq;
      if conn.outstanding = [] then conn.send_next <- conn.send_base
    end
    else begin
      (* an unresolved CANCEL ahead of us holds the base; fold our slot
         into the deferred ack so the base clears us when it resolves *)
      match conn.deferred_ack with
      | Some a when dist t conn.send_base a >= dist t conn.send_base sp.sp_seq -> ()
      | Some _ | None -> conn.deferred_ack <- Some sp.sp_seq
    end;
    k ();
    (match conn.deferred_ack with
     | Some a ->
       conn.deferred_ack <- None;
       apply_cum_ack t conn a
     | None -> ());
    start_next t conn
  end

and start_next t conn =
  let continue = ref true in
  while !continue do
    let extent = dist t conn.send_base conn.send_next in
    if Queue.is_empty conn.sendq then continue := false
    else begin
      let now = Engine.now t.engine in
      match peek_ready conn.sendq now with
      | None ->
        (* every queued send is backing off after a BUSY; wake when the
           nearest matures *)
        if conn.wake_timer = None then begin
          let at = next_ready_at conn.sendq in
          conn.wake_timer <-
            Some
              (defer t ~delay:(max 1 (at - now)) (fun () ->
                   conn.wake_timer <- None;
                   start_next t conn))
        end;
        continue := false
      (* The DATA of an accepted exchange answers an explicit server
         grant: the handler over there is already parked waiting for it,
         so gating it on a collapsed cwnd can deadlock the window (the
         in-flight REQUESTs it sits behind are BUSY-bounced by that very
         handler). It bypasses the congestion window; the peer's receive
         window still caps it. *)
      | Some peeked
        when extent >= (if peeked.ps_kind = K_put_data then win t else eff_win t conn)
        -> continue := false
      | Some _ ->
        let pending =
          match pop_ready conn.sendq now with Some p -> p | None -> assert false
        in
        let sp =
          {
            sp_kind = pending.ps_kind;
            sp_tid = pending.ps_tid;
            sp_body = pending.ps_body;
            sp_seq = conn.send_next;
            sp_run = win t > 1 && conn.outstanding = [];
            sp_retries = pending.ps_retries;
            sp_busy_attempts = pending.ps_busy;
            sp_waiting_busy = false;
            sp_timer = None;
            sp_finished = false;
            sp_sent_at = 0;
            sp_done = pending.ps_done;
          }
        in
        conn.send_next <- seq_next t conn.send_next;
        conn.outstanding <- conn.outstanding @ [ sp ];
        Stats.sample t.stats "net.window_occupancy" (List.length conn.outstanding);
        transmit_sent t conn sp
    end
  done

(* Window 1 only. The DATA of an in-progress exchange must not starve
   behind a REQUEST that is bouncing off the very handler the exchange is
   blocking: park the busy-waiting request back at the head of the queue
   (BUSY did not consume its slot, so the slot is reused) and let the
   pending Put_data go first. *)
and park_busy_sent t conn sp =
  cancel_sp_timer t sp;
  sp.sp_finished <- true;
  remove_outstanding conn sp;
  if conn.outstanding = [] then conn.send_next <- conn.send_base;
  queue_push_front conn.sendq
    {
      ps_kind = sp.sp_kind;
      ps_tid = sp.sp_tid;
      ps_body = sp.sp_body;
      ps_done = sp.sp_done;
      ps_retries = sp.sp_retries;
      ps_busy = sp.sp_busy_attempts;
      ps_ready_at = 0;
    };
  (* keep any pending DATA ahead of requeued requests *)
  let puts = Queue.create () and rest = Queue.create () in
  Queue.iter
    (fun p -> Queue.push p (if p.ps_kind = K_put_data then puts else rest))
    conn.sendq;
  Queue.clear conn.sendq;
  Queue.transfer puts conn.sendq;
  Queue.transfer rest conn.sendq

let send_reliable t ~peer ~kind ~tid body ~on_done =
  let conn = conn_for t peer in
  touch t conn;
  if tracing t then event t (Event.Enqueue { tid; peer; pkt = pkt_of_body body });
  let pending =
    { ps_kind = kind; ps_tid = tid; ps_body = body; ps_done = on_done; ps_retries = 0;
      ps_busy = 0; ps_ready_at = 0 }
  in
  (match kind with
   | K_put_data ->
     (match
        List.find_opt
          (fun sp -> sp.sp_waiting_busy && sp.sp_kind = K_request && not sp.sp_finished)
          conn.outstanding
      with
      | Some sp ->
        park_busy_sent t conn sp;
        queue_push_front conn.sendq pending
      | None when win t > 1 ->
        (* keep granted DATA ahead of unsent requests (FIFO among DATA):
           the next window slot must go to the exchange the server is
           already waiting on, not to a new REQUEST it would BUSY-bounce *)
        Queue.push pending conn.sendq;
        let puts = Queue.create () and rest = Queue.create () in
        Queue.iter
          (fun p -> Queue.push p (if p.ps_kind = K_put_data then puts else rest))
          conn.sendq;
        Queue.clear conn.sendq;
        Queue.transfer puts conn.sendq;
        Queue.transfer rest conn.sendq
      | None -> Queue.push pending conn.sendq)
   | _ -> Queue.push pending conn.sendq);
  start_next t conn

(* ---- creation ----------------------------------------------------------- *)

let create ~engine ~bus ~mid ~cost ~trace =
  (* One medium, one window: receive-side classification derives its
     sequence arithmetic from the LOCAL window, which is only sound if
     every station agrees. *)
  Bus.claim_seq_window bus ~window:(Cost.transport_window cost);
  let stats = Stats.create () in
  let hot =
    {
      c_sent_total = Stats.counter_cell stats "pkt.sent.total";
      c_recv_total = Stats.counter_cell stats "pkt.recv.total";
      sent_by_kind =
        Array.map (fun k -> Stats.counter_cell stats ("pkt.sent." ^ k)) kind_names;
      recv_by_kind =
        Array.map (fun k -> Stats.counter_cell stats ("pkt.recv." ^ k)) kind_names;
      t_transmission = Stats.time_ref stats (Cost.label Cost.Transmission);
      t_protocol = Stats.time_ref stats (Cost.label Cost.Protocol);
      t_conn_timer = Stats.time_ref stats (Cost.label Cost.Conn_timer);
      t_retrans_timer = Stats.time_ref stats (Cost.label Cost.Retrans_timer);
      packet_cpu =
        cost.Cost.packet_protocol_us + cost.Cost.conn_timer_us
        + cost.Cost.retrans_timer_us;
    }
  in
  let t =
    {
      engine;
      bus;
      mid;
      cost;
      trace;
      actor_name = Printf.sprintf "soda-%d" mid;
      stats;
      rng = Rng.split (Engine.rng engine);
      nic = None;
      cb = None;
      conns = Hashtbl.create 8;
      out_reqs = Hashtbl.create 16;
      discovers = Hashtbl.create 4;
      seen_discovers = Hashtbl.create 4;
      srv_txns = Hashtbl.create 16;
      buffered = None;
      epoch = 0;
      tid_causal = Hashtbl.create 16;
      hot;
    }
  in
  t

let set_callbacks t cb = t.cb <- Some cb

(* ---- probes (§3.6.2) ---------------------------------------------------- *)

let stop_probing t req =
  match req.or_probe_timer with
  | Some id ->
    Engine.cancel t.engine id;
    req.or_probe_timer <- None
  | None -> ()

let complete_out_req t req completion =
  if req.or_state <> Rq_done then begin
    req.or_state <- Rq_done;
    stop_probing t req;
    Hashtbl.remove t.out_reqs req.or_tid;
    Stats.sample t.stats "req.latency_us" (Engine.now t.engine - req.or_submit_us);
    if tracing t then begin
      let status =
        match completion with
        | Comp_accepted _ -> "accepted"
        | Comp_unadvertised -> "unadvertised"
        | Comp_crashed -> "crashed"
        | Comp_discovered _ -> "discovered"
      in
      event t (Event.Complete { tid = req.or_tid; status })
    end;
    (* A pending CANCEL loses the race against completion (§3.3.3). *)
    (match req.or_cancel_pending with
     | Some k ->
       req.or_cancel_pending <- None;
       k false
     | None -> ());
    (callbacks t).complete_request ~tid:req.or_tid completion;
    (* The request's span is closed; stale late packets for this tid are
       no longer attributed to it. *)
    forget_causal t ~tid:req.or_tid
  end

let rec arm_probe t req =
  req.or_probe_timer <-
    Some
      (defer t ~delay:t.cost.Cost.probe_interval_us (fun () ->
           req.or_probe_timer <- None;
           if req.or_state = Rq_delivered then begin
             if req.or_probe_outstanding then begin
               req.or_probe_misses <- req.or_probe_misses + 1;
               Stats.incr t.stats "probe.misses"
             end;
             if req.or_probe_misses >= t.cost.Cost.probe_miss_limit then begin
               Trace.record t.trace ~now:(Engine.now t.engine) ~actor:(actor t)
                 "probe: server %d silent for request #%d; reporting CRASHED" req.or_dst
                 req.or_tid;
               complete_out_req t req Comp_crashed
             end
             else begin
               req.or_probe_outstanding <- true;
               Stats.incr t.stats "probe.sent";
               if tracing t then
                 event t
                   (Event.Probe
                      { tid = req.or_tid; peer = req.or_dst; misses = req.or_probe_misses });
               emit t ~dst:(`Peer req.or_dst) (Wire.Probe { tid = req.or_tid });
               arm_probe t req
             end
           end))

let rec mark_delivered t req =
  if req.or_state = Rq_sent then begin
    req.or_state <- Rq_delivered;
    arm_probe t req;
    (* A CANCEL waiting for the server's state to become known can now
       proceed remotely. *)
    match req.or_cancel_pending with
    | Some k ->
      req.or_cancel_pending <- None;
      send_remote_cancel t req k
    | None -> ()
  end

and send_remote_cancel t req k =
  send_reliable t ~peer:req.or_dst ~kind:K_cancel ~tid:req.or_tid
    (Wire.Cancel_request { tid = req.or_tid })
    ~on_done:(fun outcome ->
      match outcome with
      | Out_cancel_reply true ->
        if req.or_state <> Rq_done then begin
          req.or_state <- Rq_done;
          stop_probing t req;
          Hashtbl.remove t.out_reqs req.or_tid;
          k true
        end
        else k false
      | Out_cancel_reply false -> k false
      | Out_error _ | Out_acked -> k false
      | Out_timeout ->
        (* Server dead: the request itself fails CRASHED; cancel fails
           because the request "completed" first. *)
        complete_out_req t req Comp_crashed;
        k false)

(* ---- requester: submitting --------------------------------------------- *)

let submit_request t ~dst ~tid ~pattern ~arg ~put_data ~get_size =
  let req =
    {
      or_tid = tid;
      or_dst = dst;
      or_put = put_data;
      or_get_size = get_size;
      or_submit_us = Engine.now t.engine;
      or_state = Rq_sent;
      or_probe_timer = None;
      or_probe_misses = 0;
      or_probe_outstanding = false;
      or_cancel_pending = None;
    }
  in
  Hashtbl.replace t.out_reqs tid req;
  Stats.incr t.stats "req.submitted";
  let body =
    Wire.Request
      {
        tid;
        pattern;
        arg;
        put_size = Bytes.length put_data;
        get_size;
        data = put_data;
        retry = false;
      }
  in
  send_reliable t ~peer:dst ~kind:K_request ~tid body ~on_done:(fun outcome ->
      match outcome with
      | Out_acked -> mark_delivered t req
      | Out_error Wire.Err_unadvertised -> complete_out_req t req Comp_unadvertised
      | Out_error _ -> complete_out_req t req Comp_crashed
      | Out_timeout -> complete_out_req t req Comp_crashed
      | Out_cancel_reply _ -> ())

let submit_discover t ~tid ~pattern ~max_mids =
  let dr = { dr_tid = tid; dr_max = max_mids; dr_mids = []; dr_timer = None } in
  Hashtbl.replace t.discovers tid dr;
  Stats.incr t.stats "discover.submitted";
  emit t ~dst:`Broadcast (Wire.Discover { tid; pattern });
  dr.dr_timer <-
    Some
      (defer t ~delay:t.cost.Cost.discover_window_us (fun () ->
           dr.dr_timer <- None;
           Hashtbl.remove t.discovers tid;
           (callbacks t).complete_request ~tid (Comp_discovered (List.rev dr.dr_mids))))

(* ---- server: transactions ----------------------------------------------- *)

let srv_gc t txn =
  (match txn.st_gc with Some id -> Engine.cancel t.engine id | None -> ());
  txn.st_gc <-
    Some
      (defer t ~delay:(Cost.record_expiry_us t.cost) (fun () ->
           Hashtbl.remove t.srv_txns (txn.st_src, txn.st_tid);
           forget_causal t ~tid:txn.st_tid))

let accept_check_done t txn ctx =
  if (not ctx.ac_done) && (not ctx.ac_need_data) && not ctx.ac_awaiting_ack then begin
    ctx.ac_done <- true;
    txn.st_state <- Srv_completed;
    srv_gc t txn;
    ctx.ac_on_done (Acc_success ctx.ac_received)
  end

let truncate_bytes data len =
  if Bytes.length data <= len then data else Bytes.sub data 0 len

let accept t ~requester_mid ~requester_tid ~arg ~get_capacity ~data_out ~on_done =
  let key = (requester_mid, requester_tid) in
  match Hashtbl.find_opt t.srv_txns key with
  | Some { st_state = Srv_cancelled; _ } -> on_done Acc_cancelled
  | Some ({ st_state = Srv_accepting _ | Srv_completed; _ } as _txn) ->
    (* Double accept of the same request. *)
    on_done Acc_cancelled
  | Some ({ st_state = Srv_delivered | Srv_buffered; _ } as txn) ->
    let put_transferred = min txn.st_put_size get_capacity in
    let data_out = truncate_bytes data_out txn.st_get_size in
    let need_data = put_transferred > 0 && txn.st_put_data = None in
    let received =
      match txn.st_put_data with
      | Some data -> truncate_bytes data put_transferred
      | None -> Bytes.empty
    in
    (* The input-buffer -> client copy of the requester's put data happens
       as part of the ACCEPT command; the outbound copy is charged at
       transmit time. *)
    let copy_us = Cost.data_copy_us t.cost ~bytes:(Bytes.length received) in
    Stats.add_time t.stats (Cost.label Cost.Protocol) copy_us;
    let ctx =
      {
        ac_put_transferred = put_transferred;
        ac_need_data = need_data;
        ac_awaiting_ack = Bytes.length data_out > 0;
        ac_received = received;
        ac_done = false;
        ac_data_timer = None;
        ac_on_done = on_done;
      }
    in
    txn.st_state <- Srv_accepting ctx;
    (* The put data was wasted on a busy transmission and must be fetched
       from the requester. That wait is bounded by the Delta-t receive
       lifetime: a requester that crashed (or was reset) after our ACCEPT
       will never send it, and without this timer the handler — and with
       it the whole server — would stay busy forever. *)
    if need_data then
      ctx.ac_data_timer <-
        Some
          (defer t ~delay:(Cost.record_expiry_us t.cost) (fun () ->
               ctx.ac_data_timer <- None;
               if (not ctx.ac_done) && ctx.ac_need_data then begin
                 Stats.incr t.stats "accept.data_timeouts";
                 Trace.record t.trace ~now:(Engine.now t.engine) ~actor:(actor t)
                   "accept of tid %d: put data never arrived; declaring peer %d crashed"
                   requester_tid requester_mid;
                 ctx.ac_done <- true;
                 txn.st_state <- Srv_completed;
                 srv_gc t txn;
                 ctx.ac_on_done Acc_crashed
               end));
    let body =
      Wire.Accept
        { tid = requester_tid; arg; put_transferred; need_put_data = need_data; data = data_out }
    in
    ignore
      (defer t ~delay:copy_us (fun () ->
           send_reliable t ~peer:requester_mid ~kind:K_accept ~tid:requester_tid body
             ~on_done:(fun outcome ->
               match outcome with
               | Out_acked ->
                 ctx.ac_awaiting_ack <- false;
                 accept_check_done t txn ctx
               | Out_error Wire.Err_cancelled ->
                 if not ctx.ac_done then begin
                   ctx.ac_done <- true;
                   txn.st_state <- Srv_completed;
                   srv_gc t txn;
                   ctx.ac_on_done Acc_cancelled
                 end
               | Out_error _ | Out_timeout ->
                 if not ctx.ac_done then begin
                   ctx.ac_done <- true;
                   txn.st_state <- Srv_completed;
                   srv_gc t txn;
                   ctx.ac_on_done Acc_crashed
                 end
               | Out_cancel_reply _ -> ());
           accept_check_done t txn ctx))
  | None ->
    (* Blind accept: either a guessed signature or a requester that crashed
       and lost our record. Send it; the requester's kernel will answer with
       the appropriate error (§3.3.2 rule 6, §5.4 staleness). *)
    let body =
      Wire.Accept
        { tid = requester_tid; arg; put_transferred = 0; need_put_data = false;
          data = Bytes.empty }
    in
    send_reliable t ~peer:requester_mid ~kind:K_accept ~tid:requester_tid body
      ~on_done:(fun outcome ->
        match outcome with
        | Out_acked -> on_done Acc_cancelled
        | Out_error Wire.Err_crashed -> on_done Acc_crashed
        | Out_error _ -> on_done Acc_cancelled
        | Out_timeout -> on_done Acc_crashed
        | Out_cancel_reply _ -> ())

(* ---- cancel -------------------------------------------------------------- *)

let cancel t ~tid ~on_done =
  match Hashtbl.find_opt t.out_reqs tid with
  | None -> on_done false
  | Some req ->
    (match req.or_state with
     | Rq_done -> on_done false
     | Rq_delivered -> send_remote_cancel t req on_done
     | Rq_sent ->
       let conn = conn_for t req.or_dst in
       (* Still queued behind other traffic (or backing off after a
          windowed BUSY)? Then the server will never see it again: kill it
          locally. *)
       let in_queue =
         Queue.fold
           (fun found p -> found || (p.ps_tid = tid && p.ps_kind = K_request))
           false conn.sendq
       in
       if in_queue then begin
         let keep = Queue.create () in
         Queue.iter
           (fun p -> if not (p.ps_tid = tid && p.ps_kind = K_request) then Queue.push p keep)
           conn.sendq;
         Queue.clear conn.sendq;
         Queue.transfer keep conn.sendq;
         req.or_state <- Rq_done;
         Hashtbl.remove t.out_reqs tid;
         on_done true
       end
       else begin
         match
           List.find_opt
             (fun sp ->
               sp.sp_tid = tid && sp.sp_kind = K_request && sp.sp_waiting_busy
               && not sp.sp_finished)
             conn.outstanding
         with
         | Some sp ->
           (* Bouncing off a busy handler (window 1): the server never took
              delivery — BUSY does not consume the slot — so a local abort
              is safe and the slot stays unconsumed. *)
           sp.sp_finished <- true;
           cancel_sp_timer t sp;
           remove_outstanding conn sp;
           if conn.outstanding = [] then conn.send_next <- conn.send_base;
           req.or_state <- Rq_done;
           Hashtbl.remove t.out_reqs tid;
           start_next t conn;
           on_done true
         | None ->
           (* Await the acknowledgement; the outcome callback resolves us. *)
           req.or_cancel_pending <- Some on_done
       end)

(* ---- incoming packet processing ------------------------------------------ *)

(* Identify a reliable message for duplicate disambiguation: after the
   sender exhausts retransmissions it reuses the slot for its NEXT
   message, so a stale-looking sequence number with a different
   transaction id is a fresh message, not a duplicate. *)
let message_key body =
  match body with
  | Wire.Request { tid; _ } -> Some (1, tid)
  | Wire.Accept { tid; _ } -> Some (2, tid)
  | Wire.Put_data { tid; _ } -> Some (3, tid)
  | Wire.Cancel_request { tid } -> Some (4, tid)
  | _ -> None

type recv_class =
  | In_order  (* at the window base (or no record): consume now *)
  | Out_of_order  (* inside the receive window but ahead of a gap *)
  | Dup of consumed_rec  (* behind the window and already consumed *)
  | Resync  (* behind the window but a different message: slot reuse *)
  | No_sync
      (* no record and not a run start: at window > 1 the packet may sit
         anywhere inside a reordered burst, so synchronising the window base
         on it would strand its predecessors (they would look "behind").
         Drop it; the sender's retransmission of the flagged run start
         establishes the base. *)

let classify t conn ~key ~run seq =
  match conn.recv_base with
  | None -> if win t = 1 || run then In_order else No_sync
  | Some base ->
    let d = dist t base seq in
    if d = 0 then In_order
    else if d < win t then Out_of_order
    else begin
      match List.assoc_opt seq conn.consumed with
      | Some cr when cr.cr_key = key || key = None -> Dup cr
      | Some _ | None -> Resync
    end

let rec take n = function [] -> [] | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

(* Consume one in-order sequence number: advance the expected base and
   open a replay record for it. [resync] means the sender rolled back and
   reused old slots — everything remembered about the previous numbering
   is void. *)
let consume t conn ~key ~resync seq =
  if conn.recv_base = None then
    Trace.record t.trace ~now:(Engine.now t.engine) ~actor:(actor t)
      "taking any SN from peer %d (no record)" conn.peer;
  if resync then begin
    conn.recv_buf <- [];
    conn.consumed <- []
  end;
  conn.recv_base <- Some (seq_next t seq);
  let cr = { cr_key = key; cr_response = None } in
  conn.consumed <-
    (seq, cr) :: take (max_consumed t - 1) (List.remove_assoc seq conn.consumed);
  cr

(* Park a packet in the receive window. A slot already held by the SAME
   message keeps its original copy (retries are dataless); a different
   message at the same slot means the sender vacated it by exhausting
   retransmissions and reused it — the stale hold is replaced, or it
   would shadow the live message (silently dropped as a "duplicate") and
   later be delivered in its place. *)
let stash t conn pkt =
  let key = message_key pkt.Wire.body in
  if
    not
      (List.exists
         (fun p -> p.Wire.seq = pkt.Wire.seq && message_key p.Wire.body = key)
         conn.recv_buf)
  then begin
    let stale, live = List.partition (fun p -> p.Wire.seq = pkt.Wire.seq) conn.recv_buf in
    if stale <> [] then begin
      Stats.incr t.stats "pkt.window_stale_replaced";
      Trace.record t.trace ~now:(Engine.now t.engine) ~actor:(actor t)
        "slot %d from peer %d reused by a new message; stale hold replaced" pkt.Wire.seq
        conn.peer
    end;
    let base = match conn.recv_base with Some b -> b | None -> pkt.Wire.seq in
    let d p = dist t base p.Wire.seq in
    let rec insert = function
      | [] -> [ pkt ]
      | p :: rest -> if d pkt < d p then pkt :: p :: rest else p :: insert rest
    in
    conn.recv_buf <- insert live;
    Stats.incr t.stats "pkt.window_buffered";
    if tracing t then
      event t
        (Event.Window_buffer
           { tid = tid_of_body pkt.Wire.body; peer = conn.peer; seq = pkt.Wire.seq;
             expected = base })
  end

(* A run-flagged packet was launched with nothing else outstanding: when
   we consume one, every other packet still held for this peer predates
   the run — its sender-side slot was vacated by exhausted
   retransmissions — and must not be delivered when the base advances
   past it. Only a held copy of this very message survives. (A packet the
   sender launched *after* the run start and that overtook it on the wire
   is flushed too; it is still unacknowledged at the sender, so its
   retransmission recovers it.) *)
let flush_run_stale t conn ~key pkt =
  if conn.recv_buf <> [] then begin
    let keep, stale =
      List.partition
        (fun p -> p.Wire.seq = pkt.Wire.seq && message_key p.Wire.body = key)
        conn.recv_buf
    in
    if stale <> [] then begin
      conn.recv_buf <- keep;
      Stats.incr t.stats "pkt.window_stale_flushed";
      Trace.record t.trace ~now:(Engine.now t.engine) ~actor:(actor t)
        "run start from peer %d: flushed %d stale held packet(s)" conn.peer
        (List.length stale)
    end
  end

(* ---- responses to our own reliable sends --------------------------------- *)

let handle_busy t conn tid =
  match
    List.find_opt
      (fun sp -> sp.sp_tid = tid && sp.sp_kind = K_request && not sp.sp_finished)
      conn.outstanding
  with
  | None -> ()
  | Some sp ->
    sp.sp_busy_attempts <- sp.sp_busy_attempts + 1;
    Stats.incr t.stats "req.busy_received";
    if win t = 1 then begin
      (* Legacy alternating-bit semantics: BUSY did not consume the slot;
         retry the same sequence number after the adaptive delay. *)
      cancel_sp_timer t sp;
      sp.sp_waiting_busy <- true;
      let queued_put_data =
        Queue.fold (fun found p -> found || p.ps_kind = K_put_data) false conn.sendq
      in
      if queued_put_data then begin
        (* A pending DATA transfer is what will free the busy handler; let
           it overtake the parked request. *)
        park_busy_sent t conn sp;
        start_next t conn
      end
      else begin
        let delay = busy_delay t sp in
        sp.sp_timer <-
          Some
            (defer t ~delay (fun () ->
                 sp.sp_timer <- None;
                 if not sp.sp_finished then begin
                   sp.sp_waiting_busy <- false;
                   transmit_sent t conn sp
                 end))
      end
    end
    else begin
      (* Windowed: the server consumed the slot to keep its receive window
         coherent. Free the slot and requeue the request (head of queue,
         backoff preserved) for a fresh one. *)
      let delay = busy_delay t sp in
      resolve_consumed t conn sp (fun () ->
          queue_push_front conn.sendq
            {
              ps_kind = sp.sp_kind;
              ps_tid = sp.sp_tid;
              ps_body = sp.sp_body;
              ps_done = sp.sp_done;
              (* BUSY is proof of liveness: retransmissions swallowed by a
                 pipelined hold before this nack must not keep eating the
                 crash-detection budget across retry cycles *)
              ps_retries = 0;
              ps_busy = sp.sp_busy_attempts;
              ps_ready_at = Engine.now t.engine + delay;
            })
    end

let handle_error t conn tid code =
  match
    List.find_opt (fun sp -> sp.sp_tid = tid && not sp.sp_finished) conn.outstanding
  with
  | None -> ()
  | Some sp ->
    if win t = 1 && code = Wire.Err_unadvertised then
      (* the peer rejected without consuming the slot *)
      finish_sent t conn sp (Out_error code)
    else resolve_consumed t conn sp (fun () -> sp.sp_done (Out_error code))

let handle_cancel_reply t conn tid ok =
  match
    List.find_opt
      (fun sp -> sp.sp_tid = tid && sp.sp_kind = K_cancel && not sp.sp_finished)
      conn.outstanding
  with
  | None -> ()
  | Some sp -> resolve_consumed t conn sp (fun () -> sp.sp_done (Out_cancel_reply ok))

(* ---- consumed-body handlers ---------------------------------------------- *)

let handle_accept_body t conn cr src (a : Wire.body) =
  match a with
  | Wire.Accept { tid; arg; put_transferred; need_put_data; data } ->
    (match Hashtbl.find_opt t.out_reqs tid with
     | Some req when req.or_state <> Rq_done ->
       if src <> req.or_dst then
         (* Rule 6 of §3.3.2: only the addressed server may accept. *)
         respond_consumed t conn cr (Wire.Error { tid; code = Wire.Err_cancelled })
       else begin
         let get_data = truncate_bytes data req.or_get_size in
         let copy_us = Cost.data_copy_us t.cost ~bytes:(Bytes.length get_data) in
         Stats.add_time t.stats (Cost.label Cost.Protocol) copy_us;
         if need_put_data then begin
           (* The put data was wasted on a busy transmission and must be
              re-sent; the data exchange -- and hence the requester's
              completion -- is only over once the server acknowledges it. *)
           let payload = truncate_bytes req.or_put put_transferred in
           Stats.incr t.stats "req.data_resend";
           send_reliable t ~peer:src ~kind:K_put_data ~tid
             (Wire.Put_data { tid; data = payload })
             ~on_done:(fun outcome ->
               match outcome with
               | Out_acked ->
                 complete_out_req t req (Comp_accepted { arg; put_transferred; get_data })
               | Out_error _ | Out_timeout -> complete_out_req t req Comp_crashed
               | Out_cancel_reply _ -> ())
         end
         else if copy_us = 0 then
           complete_out_req t req (Comp_accepted { arg; put_transferred; get_data })
         else
           ignore
             (defer t ~delay:copy_us (fun () ->
                  complete_out_req t req (Comp_accepted { arg; put_transferred; get_data })))
       end
     | Some _ | None ->
       (match (callbacks t).classify_unknown_tid tid with
        | `Completed ->
          respond_consumed t conn cr (Wire.Error { tid; code = Wire.Err_cancelled })
        | `Stale -> respond_consumed t conn cr (Wire.Error { tid; code = Wire.Err_crashed })))
  | _ -> assert false

let handle_put_data t conn (d : Wire.body) =
  match d with
  | Wire.Put_data { tid; data } ->
    (match Hashtbl.find_opt t.srv_txns (conn.peer, tid) with
     | Some ({ st_state = Srv_accepting ctx; _ } as txn) when ctx.ac_need_data ->
       (match ctx.ac_data_timer with
        | Some id ->
          Engine.cancel t.engine id;
          ctx.ac_data_timer <- None
        | None -> ());
       ctx.ac_received <- truncate_bytes data ctx.ac_put_transferred;
       ctx.ac_need_data <- false;
       let copy_us = Cost.data_copy_us t.cost ~bytes:(Bytes.length ctx.ac_received) in
       Stats.add_time t.stats (Cost.label Cost.Protocol) copy_us;
       ignore (defer t ~delay:copy_us (fun () -> accept_check_done t txn ctx))
     | Some _ | None -> ())
  | _ -> assert false

let handle_cancel_request t conn cr (c : Wire.body) =
  match c with
  | Wire.Cancel_request { tid } ->
    let key = (conn.peer, tid) in
    let ok =
      match Hashtbl.find_opt t.srv_txns key with
      | Some ({ st_state = Srv_delivered; _ } as txn) ->
        txn.st_state <- Srv_cancelled;
        srv_gc t txn;
        true
      | Some ({ st_state = Srv_buffered; _ } as txn) ->
        txn.st_state <- Srv_cancelled;
        srv_gc t txn;
        (match t.buffered with
         | Some br when br.br_src = conn.peer && br.br_tid = tid -> t.buffered <- None
         | Some _ | None -> ());
        true
      | Some { st_state = Srv_cancelled; _ } -> true
      | Some { st_state = Srv_accepting _ | Srv_completed; _ } -> false
      | None -> true
    in
    if ok then Stats.incr t.stats "cancel.granted" else Stats.incr t.stats "cancel.refused";
    respond_consumed t conn cr (Wire.Cancel_reply { tid; ok })
  | _ -> assert false

let handle_probe t conn tid =
  let alive =
    match Hashtbl.find_opt t.srv_txns (conn.peer, tid) with
    | Some { st_state = Srv_cancelled; _ } -> false
    | Some _ -> true
    | None -> false
  in
  Stats.incr t.stats "probe.answered";
  emit t ~dst:(`Peer conn.peer) (Wire.Probe_reply { tid; alive })

let handle_probe_reply t tid alive =
  match Hashtbl.find_opt t.out_reqs tid with
  | Some req when req.or_state = Rq_delivered ->
    req.or_probe_outstanding <- false;
    req.or_probe_misses <- 0;
    if not alive then begin
      Trace.record t.trace ~now:(Engine.now t.engine) ~actor:(actor t)
        "probe reply: server lost request #%d (crash+reboot); CRASHED" tid;
      complete_out_req t req Comp_crashed
    end
  | Some _ | None -> ()

let handle_discover t src tid pattern =
  if Hashtbl.mem t.seen_discovers (src, tid) then
    Stats.incr t.stats "discover.duped"
  else begin
    Hashtbl.replace t.seen_discovers (src, tid) ();
    ignore
      (defer t ~delay:(Cost.record_expiry_us t.cost) (fun () ->
           Hashtbl.remove t.seen_discovers (src, tid)));
    if (callbacks t).advertised pattern then begin
      let delay = t.cost.Cost.discover_stagger_us * (t.mid + 1) in
      Stats.incr t.stats "discover.matched";
      ignore
        (defer t ~delay (fun () -> emit t ~dst:(`Peer src) (Wire.Discover_reply { tid })))
    end
  end

let handle_discover_reply t src tid =
  match Hashtbl.find_opt t.discovers tid with
  | Some dr ->
    if (not (List.mem src dr.dr_mids)) && List.length dr.dr_mids < dr.dr_max then
      dr.dr_mids <- src :: dr.dr_mids
  | None -> ()

(* Offer an in-order REQUEST to the kernel. [`Held] (windowed pipelined
   kernels only) leaves the slot unconsumed: the packet stays parked at the
   head of the receive window, data intact, until the input buffer frees. *)
let offer_request t conn src (r : Wire.body) seq ~resync =
  match r with
  | Wire.Request { tid; pattern; arg; put_size; get_size; data; retry } ->
    let cb = callbacks t in
    let register st_state =
      let txn =
        {
          st_src = src;
          st_tid = tid;
          st_put_size = put_size;
          st_get_size = get_size;
          st_put_data = (if (not retry) && put_size > 0 then Some data else None);
          st_state;
          st_gc = None;
        }
      in
      Hashtbl.replace t.srv_txns (src, tid) txn
    in
    (* Hold the ack long enough for a promptly-issued ACCEPT -- including
       both its input and output data copies -- to piggyback it (§5.2.3). *)
    let accept_grace =
      Cost.data_copy_us t.cost ~bytes:put_size
      + Cost.data_copy_us t.cost ~bytes:get_size
      + t.cost.Cost.accept_trap_us + t.cost.Cost.context_switch_us
      + t.cost.Cost.handler_client_us
    in
    (match cb.deliver_request ~src ~tid ~pattern ~arg ~put_size ~get_size with
     | `Unadvertised ->
       Stats.incr t.stats "req.unadvertised";
       if win t > 1 then begin
         (* consume the slot so the window stays gap-free; the stored ERROR
            is replayed on duplicates *)
         let cr = consume t conn ~key:(Some (1, tid)) ~resync seq in
         respond_consumed t conn cr (Wire.Error { tid; code = Wire.Err_unadvertised })
       end
       else emit t ~dst:(`Peer conn.peer) (Wire.Error { tid; code = Wire.Err_unadvertised });
       `Done
     | `Deliver ->
       ignore (consume t conn ~key:(Some (1, tid)) ~resync seq);
       owe_ack ~extra_grace:accept_grace t conn seq;
       register Srv_delivered;
       Stats.incr t.stats "req.delivered";
       if tracing t then
         event t
           (Event.Deliver
              { tid; src; pattern = Pattern.to_int pattern; put_size; get_size;
                from_buffer = false });
       `Done
     | `Busy ->
       if t.cost.Cost.pipelined && t.buffered = None then begin
         ignore (consume t conn ~key:(Some (1, tid)) ~resync seq);
         owe_ack ~extra_grace:accept_grace t conn seq;
         register Srv_buffered;
         t.buffered <-
           Some
             { br_src = src; br_tid = tid; br_pattern = pattern; br_arg = arg;
               br_put_size = put_size; br_get_size = get_size };
         Stats.incr t.stats "req.buffered";
         `Done
       end
       else if win t > 1 && t.cost.Cost.pipelined then begin
         (* input buffer full: defer rather than nack, keeping the put data
            for delivery once the handler drains *)
         Stats.incr t.stats "req.busy_deferred";
         `Held
       end
       else if win t > 1 then begin
         Stats.incr t.stats "req.busy_nacked";
         if tracing t then event t (Event.Busy_nack { tid; peer = conn.peer });
         (* windowed BUSY consumes the slot; the requester retries under a
            fresh sequence number *)
         let cr = consume t conn ~key:(Some (1, tid)) ~resync seq in
         respond_consumed t conn cr (Wire.Busy { tid });
         `Done
       end
       else begin
         Stats.incr t.stats "req.busy_nacked";
         if tracing t then event t (Event.Busy_nack { tid; peer = conn.peer });
         emit t ~dst:(`Peer conn.peer) (Wire.Busy { tid });
         `Done
       end)
  | _ -> assert false

(* Process parked packets that have become in-order (the gap filled, or a
   deferred REQUEST's handler freed). Stops at the first hold. *)
let rec drain_recv t conn =
  match conn.recv_base, conn.recv_buf with
  (* [None]: a deferred in-order REQUEST was parked before the connection
     record existed (first contact with the input buffer full); it is the
     synchronisation point, so offer it as soon as the buffer drains. *)
  | base, pkt :: rest when base = None || base = Some pkt.Wire.seq ->
    let key = message_key pkt.Wire.body in
    (match pkt.Wire.body with
     | Wire.Request _ ->
       (match offer_request t conn pkt.Wire.src pkt.Wire.body pkt.Wire.seq ~resync:false with
        | `Done ->
          conn.recv_buf <- rest;
          drain_recv t conn
        | `Held -> ())
     | Wire.Accept { data; _ } ->
       conn.recv_buf <- rest;
       let cr = consume t conn ~key ~resync:false pkt.Wire.seq in
       let extra_grace =
         Cost.data_copy_us t.cost ~bytes:(Bytes.length data)
         + t.cost.Cost.request_trap_us + t.cost.Cost.context_switch_us
       in
       owe_ack ~extra_grace t conn pkt.Wire.seq;
       handle_accept_body t conn cr pkt.Wire.src pkt.Wire.body;
       drain_recv t conn
     | Wire.Put_data _ ->
       conn.recv_buf <- rest;
       ignore (consume t conn ~key ~resync:false pkt.Wire.seq);
       owe_ack t conn pkt.Wire.seq;
       handle_put_data t conn pkt.Wire.body;
       drain_recv t conn
     | Wire.Cancel_request _ ->
       conn.recv_buf <- rest;
       let cr = consume t conn ~key ~resync:false pkt.Wire.seq in
       owe_ack t conn pkt.Wire.seq;
       handle_cancel_request t conn cr pkt.Wire.body;
       drain_recv t conn
     | _ ->
       conn.recv_buf <- rest;
       drain_recv t conn)
  | _ -> ()

(* Nack a deferred REQUEST before the hold kills its sender. A pipelined
   kernel holds an in-order REQUEST (`Held`) while the input buffer is
   full, swallowing its retransmissions — but each swallowed
   retransmission burns the sender's [max_retrans] crash-detection
   budget. Past a threshold (with margin left for a lost nack, answered
   by duplicate replay), consume the slot and BUSY-nack so the requester
   falls back to the indefinite adaptive busy-retry path instead of
   failing [Out_timeout] against a merely long-busy handler. *)
let held_retry_limit t = max 1 (t.cost.Cost.max_retrans - 2)

let count_held_retry t conn held =
  match conn.recv_buf with
  | still :: rest when still == held ->
    (match conn.held_pkt with
     | Some p when p == held -> conn.held_retries <- conn.held_retries + 1
     | Some _ | None ->
       conn.held_pkt <- Some held;
       conn.held_retries <- 1);
    if conn.held_retries >= held_retry_limit t then begin
      conn.held_pkt <- None;
      conn.held_retries <- 0;
      match held.Wire.body with
      | Wire.Request { tid; _ } ->
        conn.recv_buf <- rest;
        Stats.incr t.stats "req.busy_nacked";
        Stats.incr t.stats "req.held_nacked";
        if tracing t then event t (Event.Busy_nack { tid; peer = conn.peer });
        let cr =
          consume t conn ~key:(message_key held.Wire.body) ~resync:false held.Wire.seq
        in
        respond_consumed t conn cr (Wire.Busy { tid });
        drain_recv t conn
      | _ -> ()
    end
  | _ ->
    (* the hold cleared: the deferred packet was delivered *)
    conn.held_pkt <- None;
    conn.held_retries <- 0

let flush_buffered t =
  (match t.buffered with
   | None -> ()
   | Some br ->
     let cb = callbacks t in
     (match
        cb.deliver_request ~src:br.br_src ~tid:br.br_tid ~pattern:br.br_pattern
          ~arg:br.br_arg ~put_size:br.br_put_size ~get_size:br.br_get_size
      with
      | `Deliver ->
        t.buffered <- None;
        (match Hashtbl.find_opt t.srv_txns (br.br_src, br.br_tid) with
         | Some txn when txn.st_state = Srv_buffered -> txn.st_state <- Srv_delivered
         | Some _ | None -> ());
        Stats.incr t.stats "req.delivered";
        Stats.incr t.stats "req.delivered_from_buffer";
        if tracing t then
          event t
            (Event.Deliver
               { tid = br.br_tid; src = br.br_src; pattern = Pattern.to_int br.br_pattern;
                 put_size = br.br_put_size; get_size = br.br_get_size; from_buffer = true })
      | `Busy -> ()
      | `Unadvertised ->
        t.buffered <- None;
        (match Hashtbl.find_opt t.srv_txns (br.br_src, br.br_tid) with
         | Some txn when txn.st_state = Srv_buffered ->
           Hashtbl.remove t.srv_txns (br.br_src, br.br_tid)
         | Some _ | None -> ());
        emit t ~dst:(`Peer br.br_src)
          (Wire.Error { tid = br.br_tid; code = Wire.Err_unadvertised })));
  (* The freed handler (and possibly the freed input buffer) may unblock a
     REQUEST deferred at the head of a receive window. *)
  if win t > 1 then Hashtbl.iter (fun _ conn -> drain_recv t conn) t.conns

let process_packet t ?ctx ~bytes pkt =
  let src = pkt.Wire.src in
  Stdlib.incr t.hot.c_recv_total;
  Stdlib.incr t.hot.recv_by_kind.(body_index pkt.Wire.body);
  (* Causal adoption: the first context-carrying packet for an unknown tid
     makes this node a child of the sender's span. Registered before the
     Rx event below so even the first receive is attributed; duplicates
     and retransmissions find the existing entry and change nothing. *)
  (match ctx with
   | Some parent ->
     let tid = tid_of_body pkt.Wire.body in
     if tid <> Event.no_tid && not (Hashtbl.mem t.tid_causal tid) then (
       match Recorder.mint_child t.trace parent with
       | Some child -> register_causal t ~tid child
       | None -> ())
   | None -> ());
  if tracing t then
    event t
      (Event.Rx
         { tid = tid_of_body pkt.Wire.body; peer = src; pkt = pkt_of_body pkt.Wire.body;
           bytes; seq = pkt.Wire.seq });
  let conn = conn_for t src in
  touch t conn;
  let key = message_key pkt.Wire.body in
  let cls =
    match pkt.Wire.body with
    | Wire.Request _ | Wire.Accept _ | Wire.Put_data _ | Wire.Cancel_request _ ->
      Some (classify t conn ~key ~run:pkt.Wire.run pkt.Wire.seq)
    | _ -> None
  in
  let resync = cls = Some Resync in
  (* Consuming a run-flagged packet voids everything still held for this
     peer: nothing else was outstanding when it launched, so held packets
     are stale remnants of a send era the peer abandoned. *)
  (match cls with
   | Some (In_order | Resync) when pkt.Wire.run -> flush_run_stale t conn ~key pkt
   | _ -> ());
  (* For non-REQUEST reliable bodies, consume the sequence number and
     register the owed acknowledgement BEFORE processing the piggybacked
     ack: acking our in-flight message may immediately transmit the next
     queued one, which should carry the ack we now owe (§5.2.3). *)
  let consumed_cr = ref None in
  (match pkt.Wire.body, cls with
   | Wire.Accept { data; _ }, Some (In_order | Resync) ->
     consumed_cr := Some (consume t conn ~key ~resync pkt.Wire.seq);
     (* Hold the ack long enough for the kernel->client copy and the
        client's next request to piggyback it. *)
     let extra_grace =
       Cost.data_copy_us t.cost ~bytes:(Bytes.length data)
       + t.cost.Cost.request_trap_us + t.cost.Cost.context_switch_us
     in
     owe_ack ~extra_grace t conn pkt.Wire.seq
   | (Wire.Put_data _ | Wire.Cancel_request _), Some (In_order | Resync) ->
     consumed_cr := Some (consume t conn ~key ~resync pkt.Wire.seq);
     owe_ack t conn pkt.Wire.seq
   | _ -> ());
  (* A BUSY must be interpreted before the cumulative ack riding the same
     packet: at window >1 the busy'd slot was consumed by the peer, and the
     plain ack walk must not mistake it for a success. *)
  (match pkt.Wire.body with Wire.Busy { tid } -> handle_busy t conn tid | _ -> ());
  (* An Error response both acknowledges (transport level) and rejects
     (semantic level) the in-flight message; its body must win, so the
     piggybacked ack is suppressed and handle_error advances the window. *)
  (match pkt.Wire.ack, pkt.Wire.body with
   | Some _, Wire.Error _ -> ()
   | Some a, _ -> apply_cum_ack t conn a
   | None, _ -> ());
  match pkt.Wire.body, cls with
  | _, Some (Dup cr) -> replay_response t conn cr
  | _, Some No_sync ->
    (* No record and not a run start: the piggybacked ack above was still
       honoured, but the body waits for the flagged retransmission. *)
    Stats.incr t.stats "pkt.no_sync_dropped";
    Trace.record t.trace ~now:(Engine.now t.engine) ~actor:(actor t)
      "no record for peer %d; awaiting run start" conn.peer
  | Wire.Request _, Some Out_of_order -> stash t conn pkt
  | Wire.Request _, Some (In_order | Resync) ->
    (match conn.recv_buf with
     | held :: _ when held.Wire.seq = pkt.Wire.seq && message_key held.Wire.body = key ->
       (* retransmission of a REQUEST already deferred at the window head;
          re-offer the held original (it still carries the put data), and
          count the swallowed retransmission against the hold bound *)
       drain_recv t conn;
       count_held_retry t conn held
     | _ ->
       (match offer_request t conn src pkt.Wire.body pkt.Wire.seq ~resync with
        | `Done -> drain_recv t conn
        | `Held -> stash t conn pkt))
  | Wire.Put_data _, Some Out_of_order ->
    (* The slot must fill in order, but the BODY is transaction-addressed
       and idempotent -- and the accepting handler may be blocked waiting
       for exactly this data while earlier slots wait for that handler
       (requests pipelined ahead of the DATA). Processing the body eagerly
       breaks the circular wait; the stashed copy still fills the gap for
       window bookkeeping and is replayed harmlessly. *)
    stash t conn pkt;
    handle_put_data t conn pkt.Wire.body
  | (Wire.Accept _ | Wire.Cancel_request _), Some Out_of_order ->
    stash t conn pkt
  | Wire.Accept _, Some (In_order | Resync) ->
    handle_accept_body t conn (Option.get !consumed_cr) src pkt.Wire.body;
    drain_recv t conn
  | Wire.Put_data _, Some (In_order | Resync) ->
    handle_put_data t conn pkt.Wire.body;
    drain_recv t conn
  | Wire.Cancel_request _, Some (In_order | Resync) ->
    handle_cancel_request t conn (Option.get !consumed_cr) pkt.Wire.body;
    drain_recv t conn
  | Wire.Ack, _ -> ()
  | Wire.Busy _, _ -> () (* handled above, before the cumulative ack *)
  | Wire.Error { tid; code }, _ -> handle_error t conn tid code
  | Wire.Cancel_reply { tid; ok }, _ -> handle_cancel_reply t conn tid ok
  | Wire.Probe { tid }, _ -> handle_probe t conn tid
  | Wire.Probe_reply { tid; alive }, _ -> handle_probe_reply t tid alive
  | Wire.Discover { tid; pattern }, _ -> handle_discover t src tid pattern
  | Wire.Discover_reply { tid }, _ -> handle_discover_reply t src tid
  | (Wire.Request _ | Wire.Accept _ | Wire.Put_data _ | Wire.Cancel_request _), None -> ()

let attach_nic t =
  (* Zero-copy receive: decode straight out of the frame buffer (which may
     be pooled and recycled after this callback returns) — the decoder
     copies data fields out, so the [pkt] value owns no view of [wire]. *)
  let nic =
    Nic.attach_view ~stats:t.stats t.bus ~mid:t.mid
      ~rx:(fun ~src:_ ~broadcast:_ ~ctx ~wire ~len ->
        match Wire.decode_sub wire ~off:0 ~len with
        | Error _ -> Stats.incr t.stats "pkt.decode_errors"
        | Ok pkt ->
          let cpu = packet_cpu_us t in
          ignore (defer t ~delay:cpu (fun () -> process_packet t ?ctx ~bytes:len pkt)))
  in
  t.nic <- Some nic;
  nic

(* ---- reset ---------------------------------------------------------------- *)

let reset t =
  t.epoch <- t.epoch + 1;
  Hashtbl.iter
    (fun _ conn ->
      List.iter (fun sp -> cancel_sp_timer t sp) conn.outstanding;
      (match conn.wake_timer with Some id -> Engine.cancel t.engine id | None -> ());
      (match conn.ack_timer with Some id -> Engine.cancel t.engine id | None -> ());
      (match conn.expiry_timer with Some id -> Engine.cancel t.engine id | None -> ()))
    t.conns;
  Hashtbl.iter
    (fun _ req ->
      match req.or_probe_timer with Some id -> Engine.cancel t.engine id | None -> ())
    t.out_reqs;
  Hashtbl.iter
    (fun _ dr -> match dr.dr_timer with Some id -> Engine.cancel t.engine id | None -> ())
    t.discovers;
  Hashtbl.iter
    (fun _ txn -> match txn.st_gc with Some id -> Engine.cancel t.engine id | None -> ())
    t.srv_txns;
  Hashtbl.reset t.conns;
  Hashtbl.reset t.out_reqs;
  Hashtbl.reset t.discovers;
  Hashtbl.reset t.seen_discovers;
  Hashtbl.reset t.srv_txns;
  Hashtbl.reset t.tid_causal;
  t.buffered <- None;
  Trace.record t.trace ~now:(Engine.now t.engine) ~actor:(actor t) "kernel state reset"

let shutdown t =
  reset t;
  Bus.detach t.bus ~mid:t.mid;
  t.nic <- None

let outstanding_requests t = Hashtbl.length t.out_reqs + Hashtbl.length t.discovers

(* Congestion-control introspection, for the test suites. *)
let effective_window t ~peer =
  match Hashtbl.find_opt t.conns peer with
  | Some conn -> eff_win t conn
  | None -> win t

let cwnd t ~peer =
  match Hashtbl.find_opt t.conns peer with
  | Some conn -> Some conn.cwnd
  | None -> None

let rtt_estimate_us t ~peer =
  match Hashtbl.find_opt t.conns peer with
  | Some conn when conn.srtt_us > 0.0 ->
    Some (int_of_float conn.srtt_us, int_of_float conn.rttvar_us)
  | _ -> None
