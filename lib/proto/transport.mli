(** The SODA kernel's network half (§5.2.2–§5.2.3).

    One [Transport.t] per node implements:

    - a {b sliding-window} reliable protocol over 8-bit modular sequence
      numbers: up to [cost.window] (clamped 1..[max_window]) unacknowledged
      reliable messages per peer per direction, cumulative piggybacked
      acks, per-packet retransmission timers with randomised exponential
      backoff, bounded out-of-order buffering at the receiver, and strict
      in-order delivery. Window 1 degenerates to the paper's
      alternating-bit stop-and-wait (§5.2.3) exactly — same wire bytes,
      same golden trace — and windows up to 8 keep the earlier 4-bit
      single-extension encoding byte for byte;
    - {b AIMD congestion control} (windowed transports with [cost.aimd]):
      each connection carries a congestion window that grows additively
      on clean cumulative acks and halves on retransmission-timer expiry
      (at most once per RTO); the effective send window is
      min(cwnd, peer receive window, cost-model cap). A Jacobson RTT
      estimator (smoothed mean + variance, Karn's rule: retransmitted
      packets never sample) floors the retransmission timeout so queueing
      delay under incast is absorbed instead of triggering spurious
      retransmit storms;
    - {b Delta-t} connection management: no explicit connection setup; a
      peer's record is created on first contact (window 1: any sequence
      bit is accepted; wider windows: only a run-start-flagged packet may
      establish the window base), expires after MPL + Delta-t of silence;
    - {b BUSY NACKs}: a REQUEST meeting a busy/closed handler is refused
      without consuming the sequence bit and retried by the requester at an
      adaptively slowed rate; retries never carry data;
    - the {b pipelined input buffer} (when [cost.pipelined]): instead of a
      BUSY NACK, one arriving REQUEST is held and re-offered to the kernel
      when the handler frees up. At windows > 1 a further in-order REQUEST
      meeting a full input buffer is deferred at the receive-window head,
      for a bounded number of swallowed retransmissions — then BUSY-nacked
      so a long-busy handler reads as BUSY (retried indefinitely), never
      as a crashed peer;
    - {b acknowledgement piggybacking}: an owed ACK waits [ack_grace_us]
      for an outgoing packet (typically the ACCEPT) to carry it;
    - {b probes} (§3.6.2): every delivered-but-unaccepted outbound request
      is probed periodically; missing replies or a rebooted server complete
      it as CRASHED;
    - {b DISCOVER}: broadcast pattern lookup with per-mid staggered
      replies (§5.3).

    The client-facing semantics (patterns, handler states, MAXREQUESTS,
    booting) live in [Soda_core.Kernel], which drives this module through
    the callback record. *)

module Types = Soda_base.Types

(** How a request completed, reported to the kernel exactly once. *)
type completion =
  | Comp_accepted of { arg : int; put_transferred : int; get_data : bytes }
  | Comp_unadvertised
  | Comp_crashed
  | Comp_discovered of int list  (** mids that answered a DISCOVER *)

type accept_outcome =
  | Acc_success of bytes  (** the put-direction data received *)
  | Acc_cancelled
  | Acc_crashed

type delivery_decision =
  [ `Deliver  (** handler open and idle; kernel will invoke it *)
  | `Busy  (** handler busy or closed *)
  | `Unadvertised ]

type callbacks = {
  deliver_request :
    src:int ->
    tid:int ->
    pattern:Soda_base.Pattern.t ->
    arg:int ->
    put_size:int ->
    get_size:int ->
    delivery_decision;
      (** Consulted when a REQUEST could be handed to the client. On
          [`Deliver] the kernel must schedule the handler invocation. *)
  complete_request : tid:int -> completion -> unit;
      (** A request issued from this node finished. *)
  advertised : Soda_base.Pattern.t -> bool;  (** DISCOVER screening *)
  classify_unknown_tid : int -> [ `Completed | `Stale ];
      (** Incoming ACCEPT names a tid we no longer track: was it completed
          in this incarnation ([`Completed] -> CANCELLED) or minted before
          the last reboot ([`Stale] -> CRASHED)? (§5.4) *)
}

type t

val create :
  engine:Soda_sim.Engine.t ->
  bus:Soda_net.Bus.t ->
  mid:int ->
  cost:Soda_base.Cost_model.t ->
  trace:Soda_sim.Trace.t ->
  t

(** Must be called exactly once before any traffic. *)
val set_callbacks : t -> callbacks -> unit

(** Attach the node's NIC to the bus and start receiving. The returned NIC
    can be disabled/enabled to simulate the node powering down. *)
val attach_nic : t -> Soda_net.Nic.t

val mid : t -> int
val stats : t -> Soda_sim.Stats.t
val cost : t -> Soda_base.Cost_model.t

(** Requester side. [put_data] is the put-direction payload (copied in);
    [get_size] the receive-capacity in bytes. Completion arrives through
    [complete_request]. *)
val submit_request :
  t -> dst:int -> tid:int -> pattern:Soda_base.Pattern.t -> arg:int ->
  put_data:bytes -> get_size:int -> unit

(** Broadcast DISCOVER; completes with [Comp_discovered] after the
    collection window. *)
val submit_discover : t -> tid:int -> pattern:Soda_base.Pattern.t -> max_mids:int -> unit

(** Server side: complete a request. [get_capacity] is the server's
    receive-buffer size for the requester's put data; [data_out] is the
    data sent back (truncated to the requester's get buffer). [on_done]
    fires when the data exchange is complete (bounded time). *)
val accept :
  t -> requester_mid:int -> requester_tid:int -> arg:int ->
  get_capacity:int -> data_out:bytes -> on_done:(accept_outcome -> unit) -> unit

(** Requester side: try to kill one of our uncompleted requests. [on_done
    true] iff the cancel took effect (in which case no completion will ever
    be delivered for the tid). *)
val cancel : t -> tid:int -> on_done:(bool -> unit) -> unit

(** The kernel's handler became available: re-offer a pipelined buffered
    request, if any. *)
val flush_buffered : t -> unit

(** Crash or DIE: drop every connection record, transaction and timer.
    The caller is responsible for the reboot quarantine. *)
val reset : t -> unit

(** Hardware teardown: {!reset}, then detach the NIC's station from the
    bus so a replacement node can re-attach under the same mid. Used by
    [Network.crash_node]. *)
val shutdown : t -> unit

(** Number of uncompleted outbound requests (for MAXREQUESTS). *)
val outstanding_requests : t -> int

(** Effective send window toward [peer]: min(cwnd, window) with AIMD on,
    the configured window otherwise (or when no connection record
    exists yet). Exposed for the congestion-control test suites. *)
val effective_window : t -> peer:int -> int

(** Congestion window toward [peer]; [None] when no connection record
    exists. Always within [1, window]. *)
val cwnd : t -> peer:int -> float option

(** RTT estimator state toward [peer] as [(srtt_us, rttvar_us)]; [None]
    before the first Karn-clean sample (or without a record). *)
val rtt_estimate_us : t -> peer:int -> (int * int) option

(** Causal identity, per live transaction. The kernel registers the
    context minted at the REQUEST trap; the server side of the transport
    adopts a child span at first sight of a context-carrying packet for
    an unknown tid. Every transport event naming a registered tid is
    stamped automatically; contexts are dropped on completion,
    server-record expiry and {!reset}. *)
val register_causal : t -> tid:int -> Soda_obs.Causal.ctx -> unit

val causal_ctx : t -> tid:int -> Soda_obs.Causal.ctx option
