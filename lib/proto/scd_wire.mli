(** Typed frame payloads for the SCD-broadcast subsystem ({!Soda_scd}).

    SCD-broadcast (Imbs, Mostéfaoui, Perrin, Raynal — "Set-Constrained
    Delivery Broadcast", arXiv:1706.05267) is implemented with a single
    message type, FORWARD: the first time a member sees an application
    message it echoes a FORWARD of its own to every peer, so each
    broadcast costs O(n²) frames. A FORWARD carries the identity of the
    application message — its sender [sd] and sender-local sequence
    number [sn] — plus the forwarding member [f] and the value [snf] of
    [f]'s local clock when it forwarded, which members use to build the
    clock vectors that drive set-constrained delivery.

    The application payload itself is one of the operations of the two
    derived objects built on top of the broadcast (a multi-writer atomic
    snapshot object and an increment/read counter), or a pure
    synchronisation marker used by read-side operations. *)

type payload =
  | Write of { reg : int; value : int; date : int; writer : int }
      (** Snapshot-object write: register index, value, and the writer's
          timestamp (date = proxy's register date + 1, writer = member id;
          ties broken by message identity). *)
  | Incr of { delta : int; origin : int; oseq : int }
      (** Counter increment. [origin]/[oseq] identify the client
          operation so a failover re-broadcast is applied once. *)
  | Sync  (** Pure synchronisation marker (snapshot / counter-read). *)

type forward = { sd : int; sn : int; f : int; snf : int; payload : payload }

val encoded_size : forward -> int
val encode : forward -> bytes
val decode : bytes -> (forward, string) result
val payload_label : payload -> string
val pp : Format.formatter -> forward -> unit
val equal : forward -> forward -> bool
