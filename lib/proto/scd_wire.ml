(* Codec for SCD-broadcast FORWARD frames. These bytes travel as the
   opaque put-payload of ordinary REQUEST packets (via Multicast), so the
   layout is private to lib/scd; it still gets the same defensive
   decoding as Wire so a corrupted or truncated frame is rejected, never
   misread. *)

type payload =
  | Write of { reg : int; value : int; date : int; writer : int }
  | Incr of { delta : int; origin : int; oseq : int }
  | Sync

type forward = { sd : int; sn : int; f : int; snf : int; payload : payload }

(* Layout (big-endian):
     [tag:1][sd:2][sn:4][f:2][snf:4] then per-tag payload fields.
   Member ids fit u16 (the simulator scales to thousands of nodes);
   sequence numbers fit i32; values and deltas are full 64-bit ints. *)

let header_size = 13

let payload_size = function
  | Write _ -> 2 + 8 + 4 + 2
  | Incr _ -> 8 + 4 + 4
  | Sync -> 0

let encoded_size fwd = header_size + payload_size fwd.payload

let tag_of_payload = function Write _ -> 0 | Incr _ -> 1 | Sync -> 2

let check_u16 what v =
  if v < 0 || v > 0xFFFF then invalid_arg (Printf.sprintf "Scd_wire: %s out of range" what)

let check_i32 what v =
  if v < -0x80000000 || v > 0x7FFFFFFF then
    invalid_arg (Printf.sprintf "Scd_wire: %s out of range" what)

let encode fwd =
  check_u16 "sd" fwd.sd;
  check_i32 "sn" fwd.sn;
  check_u16 "f" fwd.f;
  check_i32 "snf" fwd.snf;
  let b = Bytes.create (encoded_size fwd) in
  Bytes.set b 0 (Char.chr (tag_of_payload fwd.payload));
  Bytes.set_uint16_be b 1 fwd.sd;
  Bytes.set_int32_be b 3 (Int32.of_int fwd.sn);
  Bytes.set_uint16_be b 7 fwd.f;
  Bytes.set_int32_be b 9 (Int32.of_int fwd.snf);
  (match fwd.payload with
  | Write { reg; value; date; writer } ->
    check_u16 "reg" reg;
    check_i32 "date" date;
    check_u16 "writer" writer;
    Bytes.set_uint16_be b 13 reg;
    Bytes.set_int64_be b 15 (Int64.of_int value);
    Bytes.set_int32_be b 23 (Int32.of_int date);
    Bytes.set_uint16_be b 27 writer
  | Incr { delta; origin; oseq } ->
    check_i32 "origin" origin;
    check_i32 "oseq" oseq;
    Bytes.set_int64_be b 13 (Int64.of_int delta);
    Bytes.set_int32_be b 21 (Int32.of_int origin);
    Bytes.set_int32_be b 25 (Int32.of_int oseq)
  | Sync -> ());
  b

let decode b =
  let len = Bytes.length b in
  if len < header_size then Error "scd frame: truncated header"
  else begin
    let tag = Char.code (Bytes.get b 0) in
    let sd = Bytes.get_uint16_be b 1 in
    let sn = Int32.to_int (Bytes.get_int32_be b 3) in
    let f = Bytes.get_uint16_be b 7 in
    let snf = Int32.to_int (Bytes.get_int32_be b 9) in
    let with_payload need k =
      if len <> header_size + need then Error "scd frame: bad payload length"
      else Ok { sd; sn; f; snf; payload = k () }
    in
    match tag with
    | 0 ->
      with_payload 16 (fun () ->
          Write
            {
              reg = Bytes.get_uint16_be b 13;
              value = Int64.to_int (Bytes.get_int64_be b 15);
              date = Int32.to_int (Bytes.get_int32_be b 23);
              writer = Bytes.get_uint16_be b 27;
            })
    | 1 ->
      with_payload 16 (fun () ->
          Incr
            {
              delta = Int64.to_int (Bytes.get_int64_be b 13);
              origin = Int32.to_int (Bytes.get_int32_be b 21);
              oseq = Int32.to_int (Bytes.get_int32_be b 25);
            })
    | 2 -> with_payload 0 (fun () -> Sync)
    | n -> Error (Printf.sprintf "scd frame: unknown tag %d" n)
  end

let payload_label = function Write _ -> "write" | Incr _ -> "incr" | Sync -> "sync"

let pp ppf fwd =
  Format.fprintf ppf "FORWARD(sd=%d sn=%d f=%d snf=%d %s" fwd.sd fwd.sn fwd.f fwd.snf
    (payload_label fwd.payload);
  (match fwd.payload with
  | Write { reg; value; date; writer } ->
    Format.fprintf ppf " reg=%d value=%d date=%d writer=%d" reg value date writer
  | Incr { delta; origin; oseq } ->
    Format.fprintf ppf " delta=%d origin=%d oseq=%d" delta origin oseq
  | Sync -> ());
  Format.fprintf ppf ")"

let equal (a : forward) (b : forward) = a = b
