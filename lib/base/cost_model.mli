(** Calibrated timing model of the experimental SODA node (§5).

    The paper's numbers come from PDP-11/23 kernels (~170k instructions/s)
    on a 1 Mbit/s Megalink. Every cost here is virtual microseconds charged
    to the simulation clock, attributed to one of the categories of the
    paper's "Breakdown of Communications Overhead" table so that the bench
    can regenerate that table from first principles:

    per SIGNAL (2 packets, 4 kernel packet events, 2 handler interrupts):
    - connection timers: 4 x 250 us = 1.0 ms
    - retransmit timers: 4 x 175 us = 0.7 ms
    - context switch:    2 x 400 us = 0.8 ms
    - transmission:      2 x ~208 us = 0.4 ms
    - client overhead:   700 + 700 + 2 x 400 = 2.2 ms
    - protocol:          4 x 500 us = 2.0 ms
    - total ~= 7.1 ms (paper: 7.1 ms)

    The per-word slope of PUT (~40 us/word: two kernel copies at 12 us/word
    plus 16 us/word of 1 Mbit/s line time) reproduces the ~40 ms/1000-word
    slope of the performance tables. *)

type category =
  | Conn_timer  (** maintaining Delta-t connection timers *)
  | Retrans_timer  (** arming/cancelling retransmission timers *)
  | Context_switch  (** handler interrupt entry/exit *)
  | Transmission  (** time on the wire *)
  | Client_overhead  (** traps, descriptor pool locking, handler client code *)
  | Protocol  (** kernel per-packet protocol processing and data copies *)

val label : category -> string
val all_categories : category list

type t = {
  (* sizes *)
  word_bytes : int;
  header_bytes : int;  (** wire header, before any data *)
  max_data_bytes : int;  (** kernel input/output buffer capacity *)
  (* per-event CPU costs *)
  packet_protocol_us : int;  (** per packet sent or received by a kernel *)
  conn_timer_us : int;  (** per packet: Delta-t record upkeep *)
  retrans_timer_us : int;  (** per packet: retransmission timer upkeep *)
  context_switch_us : int;  (** per handler interrupt *)
  request_trap_us : int;  (** client overhead of the REQUEST primitive *)
  accept_trap_us : int;  (** client overhead of the ACCEPT primitive *)
  small_trap_us : int;  (** OPEN/CLOSE/ADVERTISE/... primitives *)
  handler_client_us : int;  (** client code bracketing a handler body *)
  copy_word_us : int;  (** one client<->kernel buffer copy, per word *)
  (* reliability timers *)
  ack_grace_us : int;  (** delayed-ACK window hoping to piggyback (§5.2.3) *)
  retrans_interval_us : int;  (** initial retransmission timeout *)
  retrans_backoff : float;  (** multiplier per retry *)
  max_retrans : int;  (** retries before declaring the peer crashed *)
  busy_retry_us : int;  (** initial retry interval after a BUSY nack *)
  busy_retry_backoff : float;  (** adaptive slowdown (§5.2.2) *)
  busy_retry_max_us : int;
  probe_interval_us : int;  (** delivered-request liveness probes (§3.6.2) *)
  probe_miss_limit : int;
  mpl_us : int;  (** maximum packet lifetime (Delta-t) *)
  (* naming *)
  discover_window_us : int;  (** how long DISCOVER collects replies *)
  discover_stagger_us : int;  (** per-mid reply stagger (§5.3) *)
  (* kernel policy *)
  maxrequests : int;  (** MAXREQUESTS (§3.3.2) *)
  pipelined : bool;  (** hold-in-input-buffer variant (§5.2.3) *)
  associative_patterns : bool;
      (** true: ideal §3.4 table; false: 256-slot overwrite table of §5.4 *)
  window : int;
      (** transport send/receive window W per peer-direction; 1 = the
          paper's alternating bit (the default, wire-compatible with the
          seed), up to [max_window] *)
  (* congestion control *)
  aimd : bool;
      (** adapt the effective send window per connection (AIMD); only
          meaningful when [window > 1] — window-1 runs always behave
          exactly like the seed's alternating bit *)
  cwnd_init : int;  (** initial congestion window, clamped to [1, W] *)
  aimd_incr : float;  (** additive increase per clean cumulative ack *)
  rtt_alpha : float;  (** smoothed-RTT gain (RFC 6298: 1/8) *)
  rtt_beta : float;  (** RTT-variance gain (RFC 6298: 1/4) *)
  bus_capacity_pkts : int;
      (** aggregate in-flight packets one bus can absorb before
          queueing collapses; feeds [fair_share_window] *)
}

val default : t

(** The non-pipelined kernel of the first performance table. *)
val non_pipelined : t

(** Largest supported transport window (bounded by the 8-bit wire field:
    the sequence space must be at least 2W, and 2 x 64 <= 256). *)
val max_window : int

(** [window] clamped to [1, max_window]. *)
val transport_window : t -> int

(** Modular sequence-number space, tiered to match the wire encoding:
    2 when the window is 1 (the seed's 1-bit encoding), 16 for windows
    up to 8 (the single-extension-byte format), 256 above that (second
    extension byte). Always at least twice the window. *)
val seq_space : t -> int

(** Pipelining depth the block-transfer facilities use per destination:
    MAXREQUESTS - 1, leaving one slot for control traffic (§4.4.1). *)
val client_window : t -> int

(** Initial congestion window as a float, clamped to [1, W]. *)
val cwnd_init : t -> float

(** [aimd_increase t ~cwnd] after one clean cumulative ack: cwnd grows
    by [aimd_incr], capped at the cost-model window. *)
val aimd_increase : t -> cwnd:float -> float

(** [aimd_decrease t ~cwnd] after a retransmission-timer expiry: cwnd
    halves, floored at 1.0 (stop-and-wait, never zero). *)
val aimd_decrease : t -> cwnd:float -> float

(** [rtt_update t ~srtt_us ~rttvar_us ~sample_us] folds one RTT sample
    into the Jacobson/Karels estimator and returns [(srtt', rttvar')].
    [srtt_us <= 0.0] means "no sample yet": the first sample seeds the
    mean and half-sample variance (RFC 6298). *)
val rtt_update : t -> srtt_us:float -> rttvar_us:float -> sample_us:int -> float * float

(** Retransmission timeout from the estimator state: srtt + 4 rttvar,
    floored at [retrans_interval_us] (an adaptive sender never fires
    earlier than the fixed schedule). With no sample yet, exactly
    [retrans_interval_us]. *)
val rto_us : t -> srtt_us:float -> rttvar_us:float -> int

(** [fair_share_window t ~stations] caps one of [stations] concurrent
    senders' in-flight packets so the aggregate stays within
    [bus_capacity_pkts]; never below 1, never above [client_window]. *)
val fair_share_window : t -> stations:int -> int

(** Total span of retransmissions, R (for Delta-t intervals). *)
val r_us : t -> int

(** Delta-t = MPL + R + A (§5.2.2). *)
val delta_t_us : t -> int

(** Connection-record lifetime: MPL + Delta-t of silence. *)
val record_expiry_us : t -> int

(** Reboot quarantine after a crash: 2 MPL + Delta-t. *)
val crash_quarantine_us : t -> int

(** [data_copy_us t ~bytes] cost of one client<->kernel copy. *)
val data_copy_us : t -> bytes:int -> int

(** [packet_bytes t ~data_bytes] wire size of a packet. *)
val packet_bytes : t -> data_bytes:int -> int
