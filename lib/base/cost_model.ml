type category =
  | Conn_timer
  | Retrans_timer
  | Context_switch
  | Transmission
  | Client_overhead
  | Protocol

let label = function
  | Conn_timer -> "connection timers"
  | Retrans_timer -> "retransmit timers"
  | Context_switch -> "context switch"
  | Transmission -> "transmission time"
  | Client_overhead -> "client overhead"
  | Protocol -> "protocol time"

let all_categories =
  [ Conn_timer; Retrans_timer; Context_switch; Transmission; Client_overhead; Protocol ]

type t = {
  word_bytes : int;
  header_bytes : int;
  max_data_bytes : int;
  packet_protocol_us : int;
  conn_timer_us : int;
  retrans_timer_us : int;
  context_switch_us : int;
  request_trap_us : int;
  accept_trap_us : int;
  small_trap_us : int;
  handler_client_us : int;
  copy_word_us : int;
  ack_grace_us : int;
  retrans_interval_us : int;
  retrans_backoff : float;
  max_retrans : int;
  busy_retry_us : int;
  busy_retry_backoff : float;
  busy_retry_max_us : int;
  probe_interval_us : int;
  probe_miss_limit : int;
  mpl_us : int;
  discover_window_us : int;
  discover_stagger_us : int;
  maxrequests : int;
  pipelined : bool;
  associative_patterns : bool;
  window : int;
  aimd : bool;
  cwnd_init : int;
  aimd_incr : float;
  rtt_alpha : float;
  rtt_beta : float;
  bus_capacity_pkts : int;
}

let default =
  {
    word_bytes = 2;
    header_bytes = 16;
    max_data_bytes = 4096;
    packet_protocol_us = 500;
    conn_timer_us = 250;
    retrans_timer_us = 175;
    context_switch_us = 400;
    request_trap_us = 700;
    accept_trap_us = 700;
    small_trap_us = 60;
    handler_client_us = 400;
    copy_word_us = 12;
    ack_grace_us = 2000;
    retrans_interval_us = 10_000;
    retrans_backoff = 1.5;
    max_retrans = 6;
    busy_retry_us = 5000;
    busy_retry_backoff = 1.25;
    busy_retry_max_us = 40_000;
    probe_interval_us = 250_000;
    probe_miss_limit = 3;
    mpl_us = 50_000;
    discover_window_us = 30_000;
    discover_stagger_us = 1000;
    maxrequests = 3;
    pipelined = true;
    associative_patterns = true;
    window = 1;
    aimd = true;
    cwnd_init = 2;
    aimd_incr = 1.0;
    rtt_alpha = 0.125;
    rtt_beta = 0.25;
    bus_capacity_pkts = 128;
  }

let non_pipelined = { default with pipelined = false }

let max_window = 64

(* Transport windows: W sequence numbers may be unacknowledged per
   peer-direction. W=1 is the paper's alternating bit and must stay the
   degenerate case, byte-for-byte. *)
let transport_window t = max 1 (min t.window max_window)

(* The sequence-number space. W=1 keeps the 1-bit space (and hence the
   seed's exact wire encoding); W <= 8 keeps the 4-bit single-extension
   space; wider windows use the second extension byte's full 8-bit
   space. Each tier satisfies space >= 2W, so cumulative acks can never
   be confused with live sequence numbers. *)
let seq_space t =
  let w = transport_window t in
  if w = 1 then 2 else if w <= 8 then 16 else 256

(* Client-side pipelining depth for the block-transfer facilities
   (stream/multicast double buffering, §4.4.1): keep one request slot in
   reserve so control traffic is never locked out by MAXREQUESTS. *)
let client_window t = max 1 (t.maxrequests - 1)

(* ---- Congestion control (AIMD + Jacobson RTT estimation) ----
   Pure arithmetic lives here so the transport's control laws are
   unit-testable without a bus: the transport feeds acks, losses and
   RTT samples through these and stores the resulting floats. *)

(* Initial congestion window, clamped into [1, W]. *)
let cwnd_init t = float_of_int (max 1 (min t.cwnd_init (transport_window t)))

(* Additive increase: one clean cumulative ack grows cwnd by aimd_incr,
   capped by the cost-model window so cwnd never exceeds what the
   sequence space can express. *)
let aimd_increase t ~cwnd =
  Float.min (float_of_int (transport_window t)) (cwnd +. t.aimd_incr)

(* Multiplicative decrease: halve on retransmission-timer expiry, but
   never below one packet in flight (the alternating-bit floor). *)
let aimd_decrease _t ~cwnd = Float.max 1.0 (cwnd /. 2.0)

(* Jacobson/Karels estimator. srtt_us = 0.0 means "no sample yet": the
   first sample seeds the mean directly and the variance at half the
   sample, exactly as in RFC 6298. Returns (srtt', rttvar'). *)
let rtt_update t ~srtt_us ~rttvar_us ~sample_us =
  let sample = float_of_int sample_us in
  if srtt_us <= 0.0 then (sample, sample /. 2.0)
  else
    let err = Float.abs (srtt_us -. sample) in
    let rttvar' = ((1.0 -. t.rtt_beta) *. rttvar_us) +. (t.rtt_beta *. err) in
    let srtt' = ((1.0 -. t.rtt_alpha) *. srtt_us) +. (t.rtt_alpha *. sample) in
    (srtt', rttvar')

(* Retransmission timeout derived from the estimator, floored at the
   static retransmit interval so an adaptive sender never fires earlier
   than the fixed-schedule one did. *)
let rto_us t ~srtt_us ~rttvar_us =
  if srtt_us <= 0.0 then t.retrans_interval_us
  else
    max t.retrans_interval_us (int_of_float (srtt_us +. (4.0 *. rttvar_us)))

(* Fair share of the bus for one of [stations] concurrent senders:
   bounds aggregate in-flight packets by the bus capacity. This is the
   cap the SCD pump uses to avoid congestion collapse at large n. *)
let fair_share_window t ~stations =
  max 1 (min (client_window t) (t.bus_capacity_pkts / max 1 stations))

let r_us t =
  let rec sum i interval acc =
    if i >= t.max_retrans then acc
    else
      sum (i + 1)
        (int_of_float (float_of_int interval *. t.retrans_backoff))
        (acc + interval)
  in
  sum 0 t.retrans_interval_us 0

let delta_t_us t = t.mpl_us + r_us t + t.ack_grace_us

let record_expiry_us t = t.mpl_us + delta_t_us t

let crash_quarantine_us t = (2 * t.mpl_us) + delta_t_us t

let data_copy_us t ~bytes =
  (* Round up to whole words; the PDP copies words, not bytes. *)
  let words = (bytes + t.word_bytes - 1) / t.word_bytes in
  words * t.copy_word_us

let packet_bytes t ~data_bytes = t.header_bytes + data_bytes
