type category =
  | Conn_timer
  | Retrans_timer
  | Context_switch
  | Transmission
  | Client_overhead
  | Protocol

let label = function
  | Conn_timer -> "connection timers"
  | Retrans_timer -> "retransmit timers"
  | Context_switch -> "context switch"
  | Transmission -> "transmission time"
  | Client_overhead -> "client overhead"
  | Protocol -> "protocol time"

let all_categories =
  [ Conn_timer; Retrans_timer; Context_switch; Transmission; Client_overhead; Protocol ]

type t = {
  word_bytes : int;
  header_bytes : int;
  max_data_bytes : int;
  packet_protocol_us : int;
  conn_timer_us : int;
  retrans_timer_us : int;
  context_switch_us : int;
  request_trap_us : int;
  accept_trap_us : int;
  small_trap_us : int;
  handler_client_us : int;
  copy_word_us : int;
  ack_grace_us : int;
  retrans_interval_us : int;
  retrans_backoff : float;
  max_retrans : int;
  busy_retry_us : int;
  busy_retry_backoff : float;
  busy_retry_max_us : int;
  probe_interval_us : int;
  probe_miss_limit : int;
  mpl_us : int;
  discover_window_us : int;
  discover_stagger_us : int;
  maxrequests : int;
  pipelined : bool;
  associative_patterns : bool;
  window : int;
}

let default =
  {
    word_bytes = 2;
    header_bytes = 16;
    max_data_bytes = 4096;
    packet_protocol_us = 500;
    conn_timer_us = 250;
    retrans_timer_us = 175;
    context_switch_us = 400;
    request_trap_us = 700;
    accept_trap_us = 700;
    small_trap_us = 60;
    handler_client_us = 400;
    copy_word_us = 12;
    ack_grace_us = 2000;
    retrans_interval_us = 10_000;
    retrans_backoff = 1.5;
    max_retrans = 6;
    busy_retry_us = 5000;
    busy_retry_backoff = 1.25;
    busy_retry_max_us = 40_000;
    probe_interval_us = 250_000;
    probe_miss_limit = 3;
    mpl_us = 50_000;
    discover_window_us = 30_000;
    discover_stagger_us = 1000;
    maxrequests = 3;
    pipelined = true;
    associative_patterns = true;
    window = 1;
  }

let non_pipelined = { default with pipelined = false }

let max_window = 8

(* Transport windows: W sequence numbers may be unacknowledged per
   peer-direction. W=1 is the paper's alternating bit and must stay the
   degenerate case, byte-for-byte. *)
let transport_window t = max 1 (min t.window max_window)

(* The sequence-number space. W=1 keeps the 1-bit space (and hence the
   seed's exact wire encoding); wider windows use the 4-bit extension
   field, whose 16-value space satisfies space >= 2W for W <= 8. *)
let seq_space t = if transport_window t = 1 then 2 else 16

(* Client-side pipelining depth for the block-transfer facilities
   (stream/multicast double buffering, §4.4.1): keep one request slot in
   reserve so control traffic is never locked out by MAXREQUESTS. *)
let client_window t = max 1 (t.maxrequests - 1)

let r_us t =
  let rec sum i interval acc =
    if i >= t.max_retrans then acc
    else
      sum (i + 1)
        (int_of_float (float_of_int interval *. t.retrans_backoff))
        (acc + interval)
  in
  sum 0 t.retrans_interval_us 0

let delta_t_us t = t.mpl_us + r_us t + t.ack_grace_us

let record_expiry_us t = t.mpl_us + delta_t_us t

let crash_quarantine_us t = (2 * t.mpl_us) + delta_t_us t

let data_copy_us t ~bytes =
  (* Round up to whole words; the PDP copies words, not bytes. *)
  let words = (bytes + t.word_bytes - 1) / t.word_bytes in
  words * t.copy_word_us

let packet_bytes t ~data_bytes = t.header_bytes + data_bytes
