(* Process migration over the boot protocol (§6.2).
   Run: dune exec examples/migration.exe *)

let () =
  let summary = Soda_examples.Migration.run () in
  Format.printf "migration: %a@." Soda_examples.Migration.pp_summary summary
