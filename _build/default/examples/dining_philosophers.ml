(* Dining philosophers with deadlock detection (§4.4.3).
   Run: dune exec examples/dining_philosophers.exe *)

let () =
  let summary = Soda_examples.Dining_philosophers.run ~duration_s:120.0 () in
  Format.printf "dining philosophers: %a@." Soda_examples.Dining_philosophers.pp_summary
    summary
