(* Two-way bounded buffer (§4.4.1). Run: dune exec examples/bounded_buffer.exe *)

let () =
  let summary = Soda_examples.Bounded_buffer.run () in
  Format.printf "bounded buffer: %a@." Soda_examples.Bounded_buffer.pp_summary summary
