(* Four-way bounded buffer (§4.4.2). Run: dune exec examples/four_way_buffer.exe *)

let () =
  let summary = Soda_examples.Four_way_buffer.run () in
  Format.printf "four-way buffer: %a@." Soda_examples.Four_way_buffer.pp_summary summary
