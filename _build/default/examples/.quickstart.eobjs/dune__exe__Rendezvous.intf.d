examples/rendezvous.mli:
