examples/quickstart.ml: Bytes List Printf Soda_base Soda_core Soda_examples Soda_facilities Soda_runtime String
