examples/bounded_buffer.mli:
