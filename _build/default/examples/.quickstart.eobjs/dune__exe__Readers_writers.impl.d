examples/readers_writers.ml: Format Soda_examples
