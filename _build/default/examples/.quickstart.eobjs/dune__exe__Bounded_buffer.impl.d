examples/bounded_buffer.ml: Format Soda_examples
