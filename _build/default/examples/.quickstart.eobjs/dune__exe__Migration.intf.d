examples/migration.mli:
