examples/quickstart.mli:
