examples/dining_philosophers.ml: Format Soda_examples
