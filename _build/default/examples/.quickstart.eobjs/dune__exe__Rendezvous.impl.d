examples/rendezvous.ml: Bytes List Printf Soda_core Soda_facilities Soda_runtime
