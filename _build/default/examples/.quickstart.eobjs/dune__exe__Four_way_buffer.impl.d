examples/four_way_buffer.ml: Format Soda_examples
