examples/file_server.ml: Format Soda_examples
