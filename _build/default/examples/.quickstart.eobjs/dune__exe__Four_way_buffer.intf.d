examples/four_way_buffer.mli:
