examples/migration.ml: Format Soda_examples
