(* File service (§4.4.5). Run: dune exec examples/file_server.exe *)

let () =
  let summary = Soda_examples.File_server.run () in
  Format.printf "file server: %a@." Soda_examples.File_server.pp_summary summary
