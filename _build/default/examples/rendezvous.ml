(* Symmetric rendezvous with output guards via Bernstein's algorithm
   (§4.2.5.1): the "Deadlock Danger" scenario resolved, then a token ring.
   Run: dune exec examples/rendezvous.exe *)

module Network = Soda_core.Network
module Sodal = Soda_runtime.Sodal
module Csp = Soda_facilities.Csp

let () =
  (* Scenario 1: A and B simultaneously offer both an output to and an
     input from each other — the exact situation that deadlocks a naive
     blocking rendezvous. Exactly one direction must win, consistently. *)
  let net = Network.create ~seed:2026 () in
  let k0 = Network.add_node net ~mid:0 in
  let k1 = Network.add_node net ~mid:1 in
  let describe self peer = function
    | Some { Csp.index = 0; _ } -> Printf.printf "  P%d: my output to P%d fired\n" self peer
    | Some { Csp.index = 1; data; _ } ->
      Printf.printf "  P%d: my input fired, received %S from P%d\n" self
        (Bytes.to_string data) peer
    | Some _ | None -> Printf.printf "  P%d: alternative failed\n" self
  in
  let proc self peer tag =
    Csp.make ~task:(fun env p ->
        let result =
          Csp.select env p
            [
              Csp.Output { peer; chan = 1; data = Bytes.of_string tag };
              Csp.Input { peer = Some peer; chan = 1 };
            ]
        in
        describe self peer result;
        Sodal.serve env)
  in
  print_endline "deadlock-danger scenario (both sides: [P!x [] P?y]):";
  let _pa, spec_a = proc 0 1 "from-A" in
  let _pb, spec_b = proc 1 0 "from-B" in
  ignore (Sodal.attach k0 spec_a);
  ignore (Sodal.attach k1 spec_b);
  ignore (Network.run ~until:60_000_000 net);

  (* Scenario 2: a three-process ring, each passing a token to its
     successor while receiving from its predecessor. *)
  print_endline "\ntoken ring (each process: [next!token [] prev?t] until both fire):";
  let net = Network.create ~seed:7 () in
  let kernels = List.init 3 (fun mid -> Network.add_node net ~mid) in
  List.iteri
    (fun self k ->
      let next = (self + 1) mod 3 and prev = (self + 2) mod 3 in
      let _p, spec =
        Csp.make ~task:(fun env p ->
            let sent = ref false and got = ref false in
            while not (!sent && !got) do
              let guards =
                (if !sent then []
                 else
                   [ Csp.Output
                       { peer = next; chan = 7; data = Bytes.of_string (string_of_int self) } ])
                @ if !got then [] else [ Csp.Input { peer = Some prev; chan = 7 } ]
              in
              match Csp.select env p guards with
              | Some outcome ->
                (match List.nth guards outcome.Csp.index with
                 | Csp.Output _ ->
                   sent := true;
                   Printf.printf "  P%d -> P%d delivered\n" self next
                 | Csp.Input _ ->
                   got := true;
                   Printf.printf "  P%d <- P%d received token %s\n" self prev
                     (Bytes.to_string outcome.Csp.data))
              | None -> failwith "ring broke"
            done;
            Sodal.serve env)
      in
      ignore (Sodal.attach k spec))
    kernels;
  ignore (Network.run ~until:240_000_000 net);
  print_endline "rendezvous demo finished."
