(* Quickstart: the "Typical SODA Network" of the paper's introduction.

   Five nodes on one broadcast bus:
     mid 0 - time server        (Timeserver facility)
     mid 1 - file server        (File_server example service)
     mid 2 - tty driver         (an input port printing what it receives)
     mid 3 - application client (discovers everything, uses everything)
     mid 4 - a free machine advertising its BOOT pattern

   Run with: dune exec examples/quickstart.exe *)

module Pattern = Soda_base.Pattern
module Types = Soda_base.Types
module Network = Soda_core.Network
module Sodal = Soda_runtime.Sodal
module Timeserver = Soda_facilities.Timeserver
module Port = Soda_facilities.Port
module File_server = Soda_examples.File_server

let tty_pattern = Pattern.well_known 0o777

let () =
  let net = Network.create ~seed:2026 () in
  let k_time = Network.add_node net ~mid:0 in
  let k_file = Network.add_node net ~mid:1 in
  let k_tty = Network.add_node net ~mid:2 in
  let k_app = Network.add_node net ~mid:3 in
  let _free_machine = Network.add_node net ~mid:4 in

  ignore (Sodal.attach k_time (Timeserver.spec ()));
  ignore (Sodal.attach k_file (File_server.server_spec ()));
  ignore
    (Sodal.attach k_tty
       (Port.spec ~pattern:tty_pattern
          ~on_data:(fun env ~arg:_ data ->
            Printf.printf "  [tty @%6.1f ms] %s\n" (float_of_int (Sodal.now env) /. 1000.0)
              (Bytes.to_string data))
          ()));

  ignore
    (Sodal.attach k_app
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let say fmt =
               Printf.ksprintf
                 (fun s ->
                   Printf.printf "[app @%6.1f ms] %s\n" (float_of_int (Sodal.now env) /. 1000.0) s)
                 fmt
             in
             say "discovering services with broadcast REQUESTs...";
             let tty = Sodal.discover env tty_pattern in
             let fs = Sodal.discover env File_server.fileserver_pattern in
             let ts = Sodal.discover env Timeserver.alarm_pattern in
             let mid_of s = match s.Types.sv_mid with Types.Mid m -> m | _ -> -1 in
             say "found tty at mid %d, file server at mid %d, time server at mid %d"
               (mid_of tty) (mid_of fs) (mid_of ts);
             let free = Sodal.discover_list env (Pattern.boot_pattern 0) ~max:8 in
             say "free machines of kind 0: [%s]"
               (String.concat "; " (List.map string_of_int free));

             say "writing a file over the network...";
             let file = File_server.open_file env ~mid:(mid_of fs) "readme.txt" in
             File_server.write env file (Bytes.of_string "SODA says hello");
             File_server.seek env file ~pos:0;
             let contents = File_server.read env file ~len:64 in
             File_server.close env file;
             say "read back: %S" (Bytes.to_string contents);

             say "printing to the tty port...";
             ignore (Port.write env tty (Bytes.of_string (Bytes.to_string contents)));

             say "sleeping 250 ms on the time server...";
             Timeserver.sleep env ts ~delay_us:250_000;
             say "awake again; quickstart done");
       });
  ignore (Network.run ~until:120_000_000 net);
  print_endline "quickstart finished."
