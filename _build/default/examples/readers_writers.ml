(* Concurrent readers and writers (§4.4.4). Run: dune exec examples/readers_writers.exe *)

let () =
  let summary = Soda_examples.Readers_writers.run () in
  Format.printf "readers/writers: %a@." Soda_examples.Readers_writers.pp_summary summary
