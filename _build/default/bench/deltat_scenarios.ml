(* F1: "Typical Delta-t Situations" — the paper's figure shows timelines of
   sequence-number acceptance, the take-any timer, and crash-recovery
   silence. We reproduce it as annotated event traces from scripted
   scenarios, with assertions on the protocol behaviour. *)

module Cost = Soda_base.Cost_model
module Pattern = Soda_base.Pattern
module Network = Soda_core.Network
module Kernel = Soda_core.Kernel
module Sodal = Soda_runtime.Sodal
module Trace = Soda_sim.Trace
module Bus = Soda_net.Bus
module Stats = Soda_sim.Stats

let patt = Pattern.well_known 0o222

let print_trace ?(keep = fun _ -> true) net =
  List.iter
    (fun e ->
      if keep e.Trace.message then
        Printf.printf "    %8.1f ms  %-8s %s\n" (float_of_int e.Trace.time_us /. 1000.0)
          e.Trace.actor e.Trace.message)
    (Trace.entries (Network.trace net))

let interesting message =
  let has needle =
    let n = String.length needle and m = String.length message in
    let rec scan i = i + n <= m && (String.sub message i n = needle || scan (i + 1)) in
    n = 0 || scan 0
  in
  has "delta-t" || has "taking any" || has "duplicate" || has "quarantine" || has "crash"
  || has "reset"

(* Scenario 1: first contact creates a connection record; the bit sequence
   is then enforced ("client 2 will insist on correct SN"). *)
let scenario_first_contact () =
  Printf.printf "  scenario 1: first contact takes any SN, then insists on sequence\n";
  let net = Network.create ~seed:31 ~trace:true () in
  let k0 = Network.add_node net ~mid:0 in
  let k1 = Network.add_node net ~mid:1 in
  ignore
    (Sodal.attach k0
       {
         Sodal.default_spec with
         init = (fun env ~parent:_ -> Sodal.advertise env patt);
         on_request = (fun env _ -> ignore (Sodal.accept_current_signal env ~arg:0));
       });
  ignore
    (Sodal.attach k1
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             ignore (Sodal.b_signal env sv ~arg:0);
             ignore (Sodal.b_signal env sv ~arg:0);
             Sodal.serve env);
       });
  ignore (Network.run ~until:2_000_000 net);
  print_trace ~keep:interesting net

(* Scenario 2: a lost ACK forces a retransmission; the receiver detects the
   duplicate SN and replays its response instead of redelivering. *)
let scenario_duplicate_rejection () =
  Printf.printf "\n  scenario 2: retransmission under loss; duplicate SN rejected\n";
  let net = Network.create ~seed:97 ~trace:true () in
  Bus.set_loss_rate (Network.bus net) 0.4;
  let k0 = Network.add_node net ~mid:0 in
  let k1 = Network.add_node net ~mid:1 in
  let deliveries = ref 0 in
  ignore
    (Sodal.attach k0
       {
         Sodal.default_spec with
         init = (fun env ~parent:_ -> Sodal.advertise env patt);
         on_request =
           (fun env _ ->
             incr deliveries;
             ignore (Sodal.accept_current_signal env ~arg:0));
       });
  let completed = ref 0 in
  ignore
    (Sodal.attach k1
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             for _ = 1 to 5 do
               let c = Sodal.b_signal env sv ~arg:0 in
               if c.Sodal.status = Sodal.Comp_ok then incr completed
             done;
             Sodal.serve env);
       });
  ignore (Network.run ~until:60_000_000 net);
  let retrans = Stats.counter (Kernel.stats k1) "pkt.retransmissions" in
  let dups = Stats.counter (Kernel.stats k0) "pkt.duplicates" in
  Printf.printf "    5/%d signals completed; %d retransmissions, %d duplicates suppressed\n"
    !completed retrans dups;
  Printf.printf "    exactly-once delivery: %s (%d handler deliveries for 5 requests)\n"
    (if !deliveries = 5 then "HELD" else "VIOLATED")
    !deliveries

(* Scenario 3: silence longer than MPL + delta-t destroys the record; the
   next contact is accepted with any SN. *)
let scenario_record_expiry () =
  Printf.printf "\n  scenario 3: record expiry after MPL + delta-t of silence (%.0f ms)\n"
    (float_of_int (Cost.record_expiry_us Cost.default) /. 1000.0);
  let net = Network.create ~seed:13 ~trace:true () in
  let k0 = Network.add_node net ~mid:0 in
  let k1 = Network.add_node net ~mid:1 in
  ignore
    (Sodal.attach k0
       {
         Sodal.default_spec with
         init = (fun env ~parent:_ -> Sodal.advertise env patt);
         on_request = (fun env _ -> ignore (Sodal.accept_current_signal env ~arg:0));
       });
  ignore
    (Sodal.attach k1
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             ignore (Sodal.b_signal env sv ~arg:0);
             Sodal.compute env (2 * Cost.record_expiry_us Cost.default);
             ignore (Sodal.b_signal env sv ~arg:0);
             Sodal.serve env);
       });
  ignore (Network.run ~until:2_000_000_000 net);
  print_trace ~keep:interesting net

(* Scenario 4: crash, quarantine of 2 MPL + delta-t, rejoin ("OK for client
   1 to send after crash"). *)
let scenario_crash_quarantine () =
  Printf.printf "\n  scenario 4: crash quarantine of 2*MPL + delta-t (%.0f ms), then rejoin\n"
    (float_of_int (Cost.crash_quarantine_us Cost.default) /. 1000.0);
  let net = Network.create ~seed:17 ~trace:true () in
  let k0 = Network.add_node net ~mid:0 in
  let k1 = Network.add_node net ~mid:1 in
  ignore
    (Sodal.attach k0
       {
         Sodal.default_spec with
         init = (fun env ~parent:_ -> Sodal.advertise env patt);
         on_request = (fun env _ -> ignore (Sodal.accept_current_signal env ~arg:0));
       });
  let statuses = ref [] in
  ignore
    (Sodal.attach k1
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             let c1 = Sodal.b_signal env sv ~arg:0 in
             statuses := c1.Sodal.status :: !statuses;
             (* server crashes at 1 s (scheduled below); a request during
                the quarantine meets only silence and fails CRASHED *)
             Sodal.compute env 1_043_000;
             let c2 = Sodal.b_signal env sv ~arg:0 in
             statuses := c2.Sodal.status :: !statuses;
             (* after the quarantine the machine is back on the network
                (boot patterns advertised, no client: UNADVERTISED) *)
             Sodal.compute env 2_000_000;
             let c3 = Sodal.b_signal env sv ~arg:0 in
             statuses := c3.Sodal.status :: !statuses;
             Sodal.serve env);
       });
  ignore
    (Soda_sim.Engine.schedule (Network.engine net) ~delay:1_000_000 (fun () ->
         Kernel.crash k0));
  ignore (Network.run ~until:5_000_000_000 net);
  let name = function
    | Sodal.Comp_ok -> "completed"
    | Sodal.Comp_rejected -> "rejected"
    | Sodal.Comp_crashed -> "CRASHED"
    | Sodal.Comp_unadvertised -> "UNADVERTISED"
  in
  (match List.rev !statuses with
   | [ first; second; third ] ->
     Printf.printf
       "    before crash: %s; during quarantine: %s (required: CRASHED);\n    after rejoining: %s (machine back, no client yet)\n"
       (name first) (name second) (name third)
   | _ -> ());
  print_trace ~keep:interesting net

let run () =
  scenario_first_contact ();
  scenario_duplicate_rejection ();
  scenario_record_expiry ();
  scenario_crash_quarantine ()
