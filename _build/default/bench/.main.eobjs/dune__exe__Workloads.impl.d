bench/workloads.ml: Array Bytes List Printf Queue Soda_base Soda_core Soda_net Soda_runtime Soda_sim
