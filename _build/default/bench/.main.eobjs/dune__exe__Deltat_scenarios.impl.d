bench/deltat_scenarios.ml: List Printf Soda_base Soda_core Soda_net Soda_runtime Soda_sim String
