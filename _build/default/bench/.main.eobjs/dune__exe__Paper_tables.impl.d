bench/paper_tables.ml:
