bench/main.mli:
