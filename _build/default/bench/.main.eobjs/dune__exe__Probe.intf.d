bench/probe.mli:
