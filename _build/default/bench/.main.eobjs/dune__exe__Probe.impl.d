bench/probe.ml: List Printf Soda_base Workloads
