let () =
  let module W = Workloads in
  let module Cost = Soda_base.Cost_model in
  let show name r =
    Printf.printf "%-28s %7.2f ms/op  %5.2f pkts/op  retrans=%d busy=%d\n%!" name
      r.W.per_op_ms r.W.packets_per_op r.W.retransmissions r.W.busy_nacks
  in
  List.iter
    (fun (label, cost) ->
      List.iter
        (fun (op, words) ->
          let r = W.stream ~cost ~op ~words () in
          show (Printf.sprintf "%s %s w=%d" label (W.op_name op) words) r)
        [ (W.Signal, 0); (W.Put, 1); (W.Put, 500); (W.Put, 1000);
          (W.Get, 1); (W.Get, 1000); (W.Exchange, 1); (W.Exchange, 1000) ])
    [ ("np", Cost.non_pipelined); ("p ", Cost.default) ];
  Printf.printf "b_signal (handler) %.2f ms\n%!" (W.blocking_signal ());
  Printf.printf "b_signal (queued)  %.2f ms\n%!" (W.blocking_signal ~mode:W.Task_queue ());
  let r = W.stream ~op:W.Signal ~words:0 ~mode:W.Task_queue () in
  show "p  SIGNAL queued" r
