(* Reference numbers from the paper's evaluation (§5.5), used for the
   paper-vs-measured columns. Times in milliseconds per operation. *)

let word_sizes = [ 0; 1; 100; 200; 300; 400; 500; 600; 700; 800; 900; 1000 ]

(* "SODA Performance" tables. *)
let put_non_pipelined = [ 7.; 8.; 11.; 16.; 19.; 23.; 27.; 31.; 35.; 39.; 43.; 47. ]
let put_pipelined = [ 8.; 8.; 12.; 15.; 19.; 23.; 28.; 31.; 35.; 39.; 43.; 46. ]
let get_non_pipelined = [ 7.; 16.; 20.; 23.; 28.; 32.; 35.; 39.; 43.; 48.; 52.; 55. ]
let get_pipelined = [ 8.; 11.; 16.; 19.; 23.; 27.; 31.; 34.; 39.; 42.; 47.; 50. ]
let exchange_non_pipelined = [ 7.; 22.; 32.; 44.; 57.; 65.; 75.; 86.; 96.; 107.; 117.; 128. ]
let exchange_pipelined = [ 8.; 12.; 20.; 27.; 35.; 43.; 50.; 58.; 67.; 75.; 82.; 90. ]

let packets_per_op = function
  | `Put, `Non_pipelined -> 2. | `Put, `Pipelined -> 2.
  | `Get, `Non_pipelined -> 4. | `Get, `Pipelined -> 2.
  | `Exchange, `Non_pipelined -> 6. | `Exchange, `Pipelined -> 2.

(* "Breakdown of Communications Overhead" (per SIGNAL, ms). *)
let breakdown =
  [ ("connection timers", 1.0); ("retransmit timers", 0.7); ("context switch", 0.8);
    ("transmission time", 0.4); ("client overhead", 2.2); ("protocol time", 2.0) ]

let breakdown_total = 7.1

(* §5.5 comparison numbers (ms). *)
let b_signal_handler_accept = 8.5
let b_signal_task_queue = 10.0
let starmod_sync_port_call = 20.7
let signal_non_blocking = 4.9
let signal_non_blocking_queued = 5.8
let starmod_async_port_call = 11.1
