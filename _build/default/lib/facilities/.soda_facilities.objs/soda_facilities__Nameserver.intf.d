lib/facilities/nameserver.mli: Soda_base Soda_runtime
