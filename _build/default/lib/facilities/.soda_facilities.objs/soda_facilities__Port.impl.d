lib/facilities/port.ml: Bytes List Soda_base Soda_runtime
