lib/facilities/nameserver.ml: Buffer Bytes Char Hashtbl List Soda_base Soda_runtime String
