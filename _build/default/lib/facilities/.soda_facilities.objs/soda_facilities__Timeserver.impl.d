lib/facilities/timeserver.ml: List Soda_base Soda_runtime
