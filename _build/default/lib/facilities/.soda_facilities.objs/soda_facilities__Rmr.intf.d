lib/facilities/rmr.mli: Soda_base Soda_runtime
