lib/facilities/stream.mli: Soda_base Soda_runtime
