lib/facilities/multicast.mli: Soda_base Soda_runtime
