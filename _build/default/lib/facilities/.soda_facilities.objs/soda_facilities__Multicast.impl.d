lib/facilities/multicast.ml: List Soda_base Soda_core Soda_runtime
