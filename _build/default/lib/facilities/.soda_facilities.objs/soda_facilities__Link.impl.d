lib/facilities/link.ml: Bytes Char Hashtbl List Soda_base Soda_runtime
