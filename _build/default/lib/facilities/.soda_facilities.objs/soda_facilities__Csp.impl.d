lib/facilities/csp.ml: Array Bytes List Soda_base Soda_runtime
