lib/facilities/port.mli: Soda_base Soda_runtime
