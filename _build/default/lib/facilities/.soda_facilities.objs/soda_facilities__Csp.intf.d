lib/facilities/csp.mli: Soda_base Soda_runtime
