lib/facilities/stream.ml: Bytes Hashtbl List Soda_base Soda_core Soda_runtime
