lib/facilities/rpc.mli: Soda_base Soda_runtime
