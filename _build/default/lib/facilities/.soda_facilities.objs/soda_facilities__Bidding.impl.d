lib/facilities/bidding.ml: Bytes Char List Option Soda_base Soda_runtime
