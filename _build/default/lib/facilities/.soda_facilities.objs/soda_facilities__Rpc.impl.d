lib/facilities/rpc.ml: Bytes Hashtbl List Queue Soda_base Soda_runtime
