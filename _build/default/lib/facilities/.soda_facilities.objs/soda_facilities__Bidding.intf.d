lib/facilities/bidding.mli: Soda_base Soda_runtime
