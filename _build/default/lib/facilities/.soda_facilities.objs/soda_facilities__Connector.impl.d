lib/facilities/connector.ml: Buffer Bytes Char Hashtbl List Printf Soda_base Soda_core Soda_runtime String
