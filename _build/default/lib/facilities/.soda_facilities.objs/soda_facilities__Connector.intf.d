lib/facilities/connector.mli: Soda_base Soda_core Soda_runtime
