lib/facilities/link.mli: Soda_base Soda_runtime
