lib/facilities/timeserver.mli: Soda_base Soda_runtime
