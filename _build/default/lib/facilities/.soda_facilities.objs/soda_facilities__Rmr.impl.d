lib/facilities/rmr.ml: Bytes Char Soda_base Soda_runtime
