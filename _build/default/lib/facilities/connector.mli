(** The connector (§4.3.1): a loosely-coupling linkage editor.

    A connector boots a set of modules onto free machines and establishes
    communication paths between them: for each connection it mints a fresh
    pattern with GETUNIQUEID, tells the server instance to advertise it,
    and tells the client instance the full <mid, pattern> signature —
    load-time interconnection, exactly as the paper's example ("Connector
    has loaded client C1 on machine M1 ...").

    Mechanically, every free machine registers the same {e loader} boot
    program; the "core image" shipped over the LOAD pattern names which
    module from the {!registry} to run. After the SIGNAL that starts the
    client, the connector PUTs a wiring message to the loader's setup
    entry; only then does the user program run, with its [resolve]
    function bound. *)

module Types = Soda_base.Types
module Sodal = Soda_runtime.Sodal

type registry

(** A module's program: [resolve] maps a connected instance name to the
    SERVER SIGNATURE to reach it (only names wired as this instance's
    servers resolve). *)
type program = resolve:(string -> Types.server_signature) -> Sodal.spec

val create_registry : unit -> registry

(** [define registry ~name program] makes [name] loadable. *)
val define : registry -> name:string -> program -> unit

(** [make_bootable registry kernel] installs the loader on a free node. *)
val make_bootable : registry -> Soda_core.Kernel.t -> unit

(** One instance to deploy: [(instance_name, module_name, boot_kind)]. *)
type instance = { instance : string; module_name : string; boot_kind : int }

exception Deploy_failure of string

(** [deploy env instances ~wiring] boots every instance on a distinct free
    machine and wires each [(client, server)] pair: afterwards, [client]'s
    [resolve server] names a pattern advertised by [server]. Returns the
    instance -> mid placement.
    @raise Deploy_failure when machines run out or a boot step fails. *)
val deploy :
  Sodal.env -> instance list -> wiring:(string * string) list -> (string * int) list
