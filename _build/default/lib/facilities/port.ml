module Types = Soda_base.Types
module Sodal = Soda_runtime.Sodal
module Bqueue = Soda_runtime.Bqueue

type discipline = Fifo | Priority

type entry = { asker : Types.requester_signature; priority : int; seq : int }

(* The pending-request store: a bounded FIFO or a priority order on the
   REQUEST argument (ties broken by arrival). *)
type store = {
  capacity : int;
  mutable items : entry list;  (* kept sorted for Priority, appended for Fifo *)
  mutable next_seq : int;
  discipline : discipline;
}

let store_create discipline capacity = { capacity; items = []; next_seq = 0; discipline }

let store_length s = List.length s.items

let store_push s ~asker ~priority =
  let entry = { asker; priority; seq = s.next_seq } in
  s.next_seq <- s.next_seq + 1;
  s.items <- s.items @ [ entry ]

let store_pop s =
  match s.items with
  | [] -> None
  | items ->
    let best =
      match s.discipline with
      | Fifo -> List.hd items
      | Priority ->
        List.fold_left
          (fun acc e ->
            if e.priority > acc.priority || (e.priority = acc.priority && e.seq < acc.seq)
            then e
            else acc)
          (List.hd items) (List.tl items)
    in
    s.items <- List.filter (fun e -> e.seq <> best.seq) items;
    Some best

let spec ~pattern ?(discipline = Fifo) ?(queue_len = 16) ?(item_size = 512) ~on_data () =
  let store = store_create discipline queue_len in
  {
    Sodal.default_spec with
    init = (fun env ~parent:_ -> Sodal.advertise env pattern);
    on_request =
      (fun env info ->
        store_push store ~asker:info.Sodal.asker ~priority:info.Sodal.arg;
        (* Flow control: stop taking requests while the signature queue is
           full; the kernel will retry/hold them (§4.2.1). *)
        if store_length store >= store.capacity then Sodal.close_handler env);
    task =
      (fun env ->
        let buffer = Bytes.create item_size in
        while true do
          match store_pop store with
          | Some entry ->
            Sodal.open_handler env;
            let status, got = Sodal.accept_put env entry.asker ~arg:0 ~into:buffer in
            (match status with
             | Types.Accept_success -> on_data env ~arg:entry.priority (Bytes.sub buffer 0 got)
             | Types.Accept_cancelled | Types.Accept_crashed -> ())
          | None -> Sodal.idle env
        done);
  }

let write env signature ?(arg = 0) data = Sodal.b_put env signature ~arg data
