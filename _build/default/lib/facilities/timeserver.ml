module Types = Soda_base.Types
module Pattern = Soda_base.Pattern
module Sodal = Soda_runtime.Sodal

let alarm_pattern = Pattern.well_known 0o1717

type pending_alarm = { asker : Types.requester_signature; mutable remaining_us : int }

let spec ?(tick_us = 10_000) () =
  let alarms : pending_alarm list ref = ref [] in
  {
    Sodal.default_spec with
    init = (fun env ~parent:_ -> Sodal.advertise env alarm_pattern);
    on_request =
      (fun _env info ->
        (* The SIGNAL argument is the delay in microseconds. *)
        alarms := { asker = info.Sodal.asker; remaining_us = max 0 info.Sodal.arg } :: !alarms);
    task =
      (fun env ->
        (* Poll the hardware clock; each iteration is one tick. *)
        while true do
          Sodal.compute env tick_us;
          let due, still =
            List.partition
              (fun a ->
                a.remaining_us <- a.remaining_us - tick_us;
                a.remaining_us <= 0)
              !alarms
          in
          alarms := still;
          List.iter (fun a -> ignore (Sodal.accept_signal env a.asker ~arg:0)) due
        done);
  }

let alarm env server ~delay_us = Sodal.signal env server ~arg:delay_us

let sleep env server ~delay_us =
  let tid = alarm env server ~delay_us in
  ignore (Sodal.await_completion env tid)

let with_timeout env server ~delay_us f =
  let alarm_tid = alarm env server ~delay_us in
  let request_tid = f () in
  let first = Sodal.await_first env [ alarm_tid; request_tid ] in
  if first.Sodal.tid = request_tid then begin
    (* Disarm: cancel the wakeup; if the alarm already fired, swallow its
       completion interrupt. *)
    if not (Sodal.cancel env alarm_tid) then Sodal.swallow_completion env alarm_tid;
    Some first
  end
  else begin
    (* Timed out: abort the slow request (§4.3.2). *)
    if not (Sodal.cancel env request_tid) then Sodal.swallow_completion env request_tid;
    None
  end
