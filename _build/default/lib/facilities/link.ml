module Types = Soda_base.Types
module Pattern = Soda_base.Pattern
module Sodal = Soda_runtime.Sodal

type id = int

type role = Master | Slave

let link_service = Pattern.well_known 0o4040

(* Special argument values of the link protocol (§4.2.4). *)
let arg_become_master = -1
let arg_moved = -2
let arg_installed = -3
let arg_destroyed = -4

type entry = {
  mutable local_pattern : Pattern.t;  (** advertised; identifies this end *)
  mutable remote_machine : int;
  mutable remote_pattern : Pattern.t option;  (** None until wired *)
  mutable state : role;
  mutable installed : bool;
  mutable moving : bool;
  mutable destroyed : bool;
  mutable want_to_move : Types.requester_signature list;
      (** SLAVEs asking to become MASTER while we are moving *)
}

type manager = {
  mutable next_id : int;
  table : (id, entry) Hashtbl.t;
  mutable generation : int;  (** bumped on any table update, for retry waits *)
}

let create_manager () = { next_id = 0; table = Hashtbl.create 8; generation = 0 }

let touch mgr = mgr.generation <- mgr.generation + 1

let links mgr =
  Hashtbl.fold (fun id e acc -> if e.installed && not e.destroyed then id :: acc else acc)
    mgr.table []
  |> List.sort compare

let role_of mgr id =
  match Hashtbl.find_opt mgr.table id with Some e -> Some e.state | None -> None

let peer_of mgr id =
  match Hashtbl.find_opt mgr.table id with
  | Some { remote_pattern = Some p; remote_machine; _ } -> Some (remote_machine, p)
  | Some _ | None -> None

let find_by_pattern mgr pattern =
  Hashtbl.fold
    (fun id e acc ->
      if Pattern.equal e.local_pattern pattern && not e.destroyed then Some (id, e) else acc)
    mgr.table None

(* ---- wire encodings ---------------------------------------------------- *)

let encode_end ~machine ~pattern =
  let b = Bytes.create 8 in
  Bytes.set b 0 (Char.chr ((machine lsr 8) land 0xFF));
  Bytes.set b 1 (Char.chr (machine land 0xFF));
  let v = Pattern.to_int pattern in
  for i = 0 to 5 do
    Bytes.set b (2 + i) (Char.chr ((v lsr (8 * (5 - i))) land 0xFF))
  done;
  b

let decode_end b =
  if Bytes.length b < 8 then None
  else begin
    let machine = (Char.code (Bytes.get b 0) lsl 8) lor Char.code (Bytes.get b 1) in
    let v = ref 0 in
    for i = 0 to 5 do
      v := (!v lsl 8) lor Char.code (Bytes.get b (2 + i))
    done;
    match Pattern.of_int !v with
    | p -> Some (machine, p)
    | exception Invalid_argument _ -> None
  end

let encode_role = function Master -> 0 | Slave -> 1

let decode_role = function 0 -> Master | _ -> Slave

(* install request payload: remote end (8 bytes) + role for the NEW holder *)
let encode_install ~machine ~pattern ~role =
  let b = Bytes.create 9 in
  Bytes.blit (encode_end ~machine ~pattern) 0 b 0 8;
  Bytes.set b 8 (Char.chr (encode_role role));
  b

let decode_install b =
  if Bytes.length b < 9 then None
  else
    match decode_end (Bytes.sub b 0 8) with
    | Some (machine, pattern) -> Some (machine, pattern, decode_role (Char.code (Bytes.get b 8)))
    | None -> None

let encode_pattern pattern = Bytes.sub (encode_end ~machine:0 ~pattern) 2 6

let decode_pattern b =
  if Bytes.length b < 6 then None
  else begin
    let v = ref 0 in
    for i = 0 to 5 do
      v := (!v lsl 8) lor Char.code (Bytes.get b i)
    done;
    match Pattern.of_int !v with p -> Some p | exception Invalid_argument _ -> None
  end

(* ---- handler side -------------------------------------------------------- *)

let install_new_end env mgr info =
  (* EXCHANGE on LINK_SERVICE: receive the remote end's address and role,
     mint a fresh local pattern, advertise it, return it. The end is
     BEING_INSTALLED until the -3 signal. *)
  let into = Bytes.create 9 in
  let fresh = Sodal.getuniqueid env in
  let reply = encode_pattern fresh in
  (* remote_pattern may legitimately be a placeholder during a move; the -2
     update will fix it. *)
  let status, got =
    Sodal.accept_exchange env info.Sodal.asker ~arg:0 ~into ~data:reply
  in
  match status with
  | Types.Accept_success ->
    (match decode_install (Bytes.sub into 0 got) with
     | Some (machine, pattern, role) ->
       Sodal.advertise env fresh;
       let id = mgr.next_id in
       mgr.next_id <- id + 1;
       Hashtbl.replace mgr.table id
         {
           local_pattern = fresh;
           remote_machine = machine;
           remote_pattern = Some pattern;
           state = role;
           installed = false;
           moving = false;
           destroyed = false;
           want_to_move = [];
         };
       touch mgr
     | None -> ())
  | Types.Accept_cancelled | Types.Accept_crashed -> ()

let handle_link_request env mgr on_data info =
  let pattern = info.Sodal.pattern in
  if Pattern.equal pattern link_service then install_new_end env mgr info
  else begin
    match find_by_pattern mgr pattern with
    | None -> Sodal.reject env
    | Some (id, entry) ->
      let arg = info.Sodal.arg in
      if entry.moving && arg <> arg_become_master then
        (* Requests over a moving link are REJECTED and reissued later. *)
        Sodal.reject env
      else if arg >= 0 then begin
        (* User data. *)
        let into = Bytes.create info.Sodal.put_size in
        let status, got = Sodal.accept_put env info.Sodal.asker ~arg:0 ~into in
        (match status with
         | Types.Accept_success ->
           let reply = on_data env mgr id ~arg (Bytes.sub into 0 got) in
           ignore reply
         | Types.Accept_cancelled | Types.Accept_crashed -> ())
      end
      else if arg = arg_become_master then begin
        if not entry.moving then begin
          (* Grant mastership; we become the SLAVE end. *)
          ignore
            (Sodal.accept_current_get env ~arg:0 ~data:(Bytes.of_string "S"));
          entry.state <- Slave;
          touch mgr
        end
        else
          (* We are moving: park the asker; it will be told to retry when
             the move completes (§4.2.4). *)
          entry.want_to_move <- info.Sodal.asker :: entry.want_to_move
      end
      else if arg = arg_moved then begin
        (* The partner end moved: update the binding and retry senders. *)
        let into = Bytes.create 8 in
        let status, got = Sodal.accept_current_put env ~arg:0 ~into in
        (match status with
         | Types.Accept_success ->
           (match decode_end (Bytes.sub into 0 got) with
            | Some (machine, pattern) ->
              entry.remote_machine <- machine;
              entry.remote_pattern <- Some pattern;
              touch mgr
            | None -> ())
         | Types.Accept_cancelled | Types.Accept_crashed -> ())
      end
      else if arg = arg_installed then begin
        ignore (Sodal.accept_current_signal env ~arg:0);
        entry.installed <- true;
        touch mgr
      end
      else if arg = arg_destroyed then begin
        ignore (Sodal.accept_current_signal env ~arg:0);
        entry.destroyed <- true;
        Sodal.unadvertise env entry.local_pattern;
        touch mgr
      end
      else Sodal.reject env
  end

let default_on_data _env _mgr _id ~arg:_ _data = Bytes.empty

let spec ?init:(user_init = fun _ _ ~parent:_ -> ()) ?(on_data = default_on_data)
    ?task:user_task () =
  let mgr = create_manager () in
  let spec =
    {
      Sodal.default_spec with
      init =
        (fun env ~parent ->
          Sodal.advertise env link_service;
          user_init env mgr ~parent);
      on_request = (fun env info -> handle_link_request env mgr on_data info);
      task =
        (match user_task with
         | Some task -> fun env -> task env mgr
         | None -> Sodal.default_spec.Sodal.task);
    }
  in
  (mgr, spec)

(* ---- task-side operations -------------------------------------------------- *)

let wait_generation env mgr gen =
  while mgr.generation = gen do
    Sodal.compute env 5_000
  done

let wait_for_links env mgr ~n =
  while List.length (links mgr) < n do
    Sodal.compute env 5_000
  done

(* Ask a remote link manager to create an end wired to [remote]. Returns
   the pattern of the new end. *)
let request_install env ~at ~remote_machine ~remote_pattern ~role =
  let payload = encode_install ~machine:remote_machine ~pattern:remote_pattern ~role in
  let into = Bytes.create 6 in
  let c =
    Sodal.b_exchange env (Sodal.server ~mid:at ~pattern:link_service) ~arg:0 payload ~into
  in
  match c.Sodal.status with
  | Sodal.Comp_ok -> decode_pattern into
  | Sodal.Comp_rejected | Sodal.Comp_crashed | Sodal.Comp_unadvertised -> None

let introduce env ~a ~b =
  (* Chicken-and-egg: each end must name the other, but neither pattern
     exists yet. Create A's end against a placeholder, then B's against the
     real A address, then fix A via the -2 (moved) update. *)
  let placeholder = link_service in
  match request_install env ~at:a ~remote_machine:b ~remote_pattern:placeholder ~role:Master with
  | None -> raise (Sodal.Sodal_error "introduce: first end refused")
  | Some pattern_a ->
    (match
       request_install env ~at:b ~remote_machine:a ~remote_pattern:pattern_a ~role:Slave
     with
     | None -> raise (Sodal.Sodal_error "introduce: second end refused")
     | Some pattern_b ->
       let fix_a =
         Sodal.b_put env (Sodal.server ~mid:a ~pattern:pattern_a) ~arg:arg_moved
           (encode_end ~machine:b ~pattern:pattern_b)
       in
       ignore fix_a;
       ignore (Sodal.b_signal env (Sodal.server ~mid:a ~pattern:pattern_a) ~arg:arg_installed);
       ignore (Sodal.b_signal env (Sodal.server ~mid:b ~pattern:pattern_b) ~arg:arg_installed))

let entry_exn mgr id =
  match Hashtbl.find_opt mgr.table id with
  | Some e -> e
  | None -> raise (Sodal.Sodal_error "unknown link id")

let send env mgr id ?(arg = 0) data =
  if arg < 0 then invalid_arg "Link.send: user arguments are non-negative";
  let entry = entry_exn mgr id in
  let rec attempt () =
    if entry.destroyed then `Destroyed
    else if not entry.installed then begin
      let gen = mgr.generation in
      wait_generation env mgr gen;
      attempt ()
    end
    else begin
      match entry.remote_pattern with
      | None ->
        let gen = mgr.generation in
        wait_generation env mgr gen;
        attempt ()
      | Some remote ->
        let c =
          Sodal.b_put env (Sodal.server ~mid:entry.remote_machine ~pattern:remote) ~arg data
        in
        (match c.Sodal.status with
         | Sodal.Comp_ok -> `Ok
         | Sodal.Comp_rejected | Sodal.Comp_unadvertised ->
           (* Far end moving or moved: wait for the -2 update, reissue. *)
           let gen = mgr.generation in
           wait_generation env mgr gen;
           attempt ()
         | Sodal.Comp_crashed -> `Destroyed)
    end
  in
  attempt ()

let become_master env mgr id =
  let entry = entry_exn mgr id in
  let rec loop () =
    if entry.state = Slave then begin
      match entry.remote_pattern with
      | None ->
        let gen = mgr.generation in
        wait_generation env mgr gen;
        loop ()
      | Some remote ->
        let into = Bytes.create 1 in
        let c =
          Sodal.b_get env
            (Sodal.server ~mid:entry.remote_machine ~pattern:remote)
            ~arg:arg_become_master ~into
        in
        (match c.Sodal.status with
         | Sodal.Comp_ok ->
           entry.state <- Master;
           touch mgr
         | Sodal.Comp_rejected | Sodal.Comp_unadvertised | Sodal.Comp_crashed ->
           (* Master end busy moving; try again once things settle. *)
           Sodal.compute env 10_000;
           loop ())
    end
  in
  loop ()

let move env mgr id ~to_machine =
  let entry = entry_exn mgr id in
  entry.moving <- true;
  touch mgr;
  become_master env mgr id;
  let old_machine = entry.remote_machine in
  let old_pattern =
    match entry.remote_pattern with
    | Some p -> p
    | None -> raise (Sodal.Sodal_error "move: link not wired")
  in
  (* Create the replacement end at the destination, wired to our partner. *)
  (match
     request_install env ~at:to_machine ~remote_machine:old_machine
       ~remote_pattern:old_pattern ~role:Master
   with
   | None -> raise (Sodal.Sodal_error "move: destination refused the end")
   | Some new_pattern ->
     (* Tell the partner its new remote address; it flushes rejected
        requests and reissues them. *)
     ignore
       (Sodal.b_put env (Sodal.server ~mid:old_machine ~pattern:old_pattern) ~arg:arg_moved
          (encode_end ~machine:to_machine ~pattern:new_pattern));
     (* Tell the new end everything is installed. *)
     ignore
       (Sodal.b_signal env (Sodal.server ~mid:to_machine ~pattern:new_pattern)
          ~arg:arg_installed));
  (* Our end is gone: release parked become-master requests so they retry
     against the moved end, then drop the entry. *)
  let parked = entry.want_to_move in
  entry.want_to_move <- [];
  List.iter (fun asker -> Sodal.reject_request env asker) parked;
  entry.moving <- false;
  entry.destroyed <- true;
  Sodal.unadvertise env entry.local_pattern;
  Hashtbl.remove mgr.table id;
  touch mgr

let destroy env mgr id =
  let entry = entry_exn mgr id in
  (match entry.remote_pattern with
   | Some remote when not entry.destroyed ->
     let c =
       Sodal.b_signal env
         (Sodal.server ~mid:entry.remote_machine ~pattern:remote)
         ~arg:arg_destroyed
     in
     ignore c
   | Some _ | None -> ());
  entry.destroyed <- true;
  Sodal.unadvertise env entry.local_pattern;
  Hashtbl.remove mgr.table id;
  touch mgr
