module Types = Soda_base.Types
module Pattern = Soda_base.Pattern
module Sodal = Soda_runtime.Sodal
module Kernel = Soda_core.Kernel

type program = resolve:(string -> Types.server_signature) -> Sodal.spec

type registry = (string, program) Hashtbl.t

type instance = { instance : string; module_name : string; boot_kind : int }

exception Deploy_failure of string

let setup_pattern = Pattern.well_known 0o6060

let create_registry () = Hashtbl.create 8

let define registry ~name program = Hashtbl.replace registry name program

(* ---- wiring message codec ---------------------------------------------- *)
(* record := role(1) name_len(1) name mid(2) pattern(6); message := count(1) records *)

let encode_wiring records =
  let buf = Buffer.create 64 in
  Buffer.add_char buf (Char.chr (List.length records));
  List.iter
    (fun (role, name, mid, pattern) ->
      Buffer.add_char buf (Char.chr role);
      Buffer.add_char buf (Char.chr (String.length name));
      Buffer.add_string buf name;
      Buffer.add_char buf (Char.chr ((mid lsr 8) land 0xFF));
      Buffer.add_char buf (Char.chr (mid land 0xFF));
      let v = Pattern.to_int pattern in
      for i = 0 to 5 do
        Buffer.add_char buf (Char.chr ((v lsr (8 * (5 - i))) land 0xFF))
      done)
    records;
  Buffer.to_bytes buf

let decode_wiring b =
  try
    let pos = ref 0 in
    let u8 () =
      let v = Char.code (Bytes.get b !pos) in
      incr pos;
      v
    in
    let count = u8 () in
    let records =
      List.init count (fun _ ->
          let role = u8 () in
          let len = u8 () in
          let name = Bytes.sub_string b !pos len in
          pos := !pos + len;
          (* sequence the reads: OCaml evaluates operands right-to-left *)
          let hi = u8 () in
          let lo = u8 () in
          let mid = (hi lsl 8) lor lo in
          let v = ref 0 in
          for _ = 0 to 5 do
            v := (!v lsl 8) lor u8 ()
          done;
          (role, name, mid, Pattern.of_int !v))
    in
    Some records
  with Invalid_argument _ -> None

(* ---- loader ---------------------------------------------------------------- *)

(* The loader interposes on the user spec: its handler forwards to the user
   handler once wiring is installed; its task blocks until then. *)
let make_bootable registry kernel =
  Sodal.bootable_dynamic kernel (fun ~parent:_ ~image ->
      let module_name = Bytes.to_string image in
      let wiring : (string, Types.server_signature) Hashtbl.t = Hashtbl.create 4 in
      let user_spec = ref None in
      let started = ref false in
      let resolve name =
        match Hashtbl.find_opt wiring name with
        | Some signature -> signature
        | None -> raise (Sodal.Sodal_error ("connector: no wiring for " ^ name))
      in
      let loader_spec =
        {
          Sodal.init = (fun env ~parent:_ -> Sodal.advertise env setup_pattern);
          on_request =
            (fun env info ->
              if (not !started) && Pattern.equal info.Sodal.pattern setup_pattern then begin
                let into = Bytes.create info.Sodal.put_size in
                let status, got = Sodal.accept_current_put env ~arg:0 ~into in
                match status with
                | Types.Accept_success ->
                  (match decode_wiring (Bytes.sub into 0 got) with
                   | Some records ->
                     List.iter
                       (fun (role, name, mid, pattern) ->
                         if role = 0 then
                           (* We are the server end: advertise now, before
                              the connector releases our clients. *)
                           Sodal.advertise env pattern
                         else
                           Hashtbl.replace wiring name
                             { Types.sv_mid = Types.Mid mid; sv_pattern = pattern })
                       records;
                     (match Hashtbl.find_opt registry module_name with
                      | Some program ->
                        let spec = program ~resolve in
                        user_spec := Some spec;
                        spec.Sodal.init env ~parent:0
                      | None -> ());
                     Sodal.unadvertise env setup_pattern;
                     started := true
                   | None -> ())
                | Types.Accept_cancelled | Types.Accept_crashed -> ()
              end
              else begin
                match !user_spec with
                | Some spec when !started -> spec.Sodal.on_request env info
                | Some _ | None -> Sodal.reject env
              end);
          on_completion =
            (fun env info ->
              match !user_spec with
              | Some spec when !started -> spec.Sodal.on_completion env info
              | Some _ | None -> ());
          task =
            (fun env ->
              while not !started do
                Sodal.compute env 2_000
              done;
              match !user_spec with
              | Some spec -> spec.Sodal.task env
              | None -> raise (Sodal.Sodal_error ("connector: unknown module " ^ module_name)));
        }
      in
      loader_spec)

(* ---- deploy ------------------------------------------------------------------ *)

let decode_load_pattern b =
  let v = ref 0 in
  for i = 0 to 5 do
    v := (!v lsl 8) lor Char.code (Bytes.get b i)
  done;
  Pattern.of_int !v

let boot_one env ~mid ~kind ~module_name =
  let boot = Pattern.boot_pattern kind in
  let into = Bytes.create 6 in
  let c = Sodal.b_get env (Sodal.server ~mid ~pattern:boot) ~arg:0 ~into in
  if c.Sodal.status <> Sodal.Comp_ok then
    raise (Deploy_failure (Printf.sprintf "machine %d refused boot" mid));
  let load = decode_load_pattern into in
  let sv = Sodal.server ~mid ~pattern:load in
  let put = Sodal.b_put env sv ~arg:0 (Bytes.of_string module_name) in
  if put.Sodal.status <> Sodal.Comp_ok then
    raise (Deploy_failure (Printf.sprintf "image transfer to %d failed" mid));
  let start = Sodal.b_signal env sv ~arg:0 in
  if start.Sodal.status <> Sodal.Comp_ok then
    raise (Deploy_failure (Printf.sprintf "start signal to %d failed" mid))

let deploy env instances ~wiring =
  (* 1. allocate distinct free machines per boot kind *)
  let used = ref [] in
  let placement =
    List.map
      (fun inst ->
        let free = Sodal.discover_list env (Pattern.boot_pattern inst.boot_kind) ~max:32 in
        match List.find_opt (fun m -> not (List.mem m !used)) free with
        | Some mid ->
          used := mid :: !used;
          (inst, mid)
        | None -> raise (Deploy_failure ("no free machine for " ^ inst.instance)))
      instances
  in
  let mid_of name =
    match List.find_opt (fun (i, _) -> i.instance = name) placement with
    | Some (_, mid) -> mid
    | None -> raise (Deploy_failure ("wiring names unknown instance " ^ name))
  in
  (* 2. boot every instance *)
  List.iter (fun (inst, mid) -> boot_one env ~mid ~kind:inst.boot_kind ~module_name:inst.module_name) placement;
  (* 3. mint one pattern per connection *)
  let connections =
    List.map
      (fun (client, server) ->
        let pattern = Sodal.getuniqueid env in
        (client, server, pattern))
      wiring
  in
  let records_for name =
    List.concat_map
      (fun (client, server, pattern) ->
        if server = name then [ (0, client, mid_of client, pattern) ]
        else if client = name then [ (1, server, mid_of server, pattern) ]
        else [])
      connections
  in
  (* 4. deliver wiring, server roles first so patterns are advertised
        before any client starts talking *)
  let is_server name = List.exists (fun (_, s, _) -> s = name) connections in
  let ordered =
    List.stable_sort
      (fun (a, _) (b, _) ->
        compare (not (is_server a.instance)) (not (is_server b.instance)))
      placement
  in
  List.iter
    (fun (inst, mid) ->
      let payload = encode_wiring (records_for inst.instance) in
      let c = Sodal.b_put env (Sodal.server ~mid ~pattern:setup_pattern) ~arg:0 payload in
      if c.Sodal.status <> Sodal.Comp_ok then
        raise (Deploy_failure ("wiring delivery to " ^ inst.instance ^ " failed")))
    ordered;
  List.map (fun (inst, mid) -> (inst.instance, mid)) placement
