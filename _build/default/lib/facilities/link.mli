(** Virtual circuits ("links") with transparent link moving (§4.2.4).

    A link is a duplex logical channel whose ends can be rebound to other
    clients after establishment. Each client that participates runs a link
    manager: a LINK_SERVICE entry plus a table mapping locally advertised
    patterns to the remote end's <machine, pattern>.

    Protocol (the paper's, §4.2.4, with the introduction step made
    explicit):
    - establishing/receiving an end: EXCHANGE on LINK_SERVICE carrying the
      remote end's address; the new holder mints and returns a fresh
      pattern for its end;
    - arg -1 on a link: "let me become MASTER" (only the MASTER may move
      its end; the grant demotes the granter to SLAVE);
    - arg -2: "your partner end has moved; here is its new address";
    - arg -3: "your freshly installed end is fully wired; you may send";
    - arg -4: "the link is destroyed";
    - arg >= 0: user data; REJECTed while the receiving end is moving, in
      which case the sender reissues once the -2 update arrives. *)

module Types = Soda_base.Types
module Sodal = Soda_runtime.Sodal

(** Local link-end identifier (small integer index, as in the paper). *)
type id = int

type role = Master | Slave

type manager

val link_service : Soda_base.Pattern.t

(** [spec ?on_data manager] builds a client program participating in the
    link protocol. [on_data env mgr link ~arg data] handles user messages
    arriving on [link] and returns the bytes sent back (for EXCHANGEs;
    return [Bytes.empty] otherwise). [task] is the client's own task. *)
val spec :
  ?init:(Sodal.env -> manager -> parent:int -> unit) ->
  ?on_data:(Sodal.env -> manager -> id -> arg:int -> bytes -> bytes) ->
  ?task:(Sodal.env -> manager -> unit) ->
  unit ->
  manager * Sodal.spec

(** {1 Operations (task context)} *)

(** [introduce env mgr ~a ~b] — the introducer (who knows both machines)
    wires a fresh link between clients [a] and [b]; [a] holds the MASTER
    end. Returns nothing at the introducer: the ends belong to a and b. *)
val introduce : Sodal.env -> a:int -> b:int -> unit

(** [links mgr] — currently installed local ends. *)
val links : manager -> id list

val role_of : manager -> id -> role option

val peer_of : manager -> id -> (int * Soda_base.Pattern.t) option

(** [send env mgr link ~arg data] sends user data over the link (a
    blocking PUT), transparently reissuing while the far end moves.
    [`Destroyed] if the link was torn down or the holder crashed. *)
val send : Sodal.env -> manager -> id -> ?arg:int -> bytes -> [ `Ok | `Destroyed ]

(** [move env mgr link ~to_machine] moves our end of [link] to another
    client (which must also run a link manager), transparently to the
    partner (§4.2.4). Our local end disappears. *)
val move : Sodal.env -> manager -> id -> to_machine:int -> unit

(** [destroy env mgr link] tears the link down; the partner learns on its
    next send (or immediately via the -4 notification). *)
val destroy : Sodal.env -> manager -> id -> unit

(** Blocks until this manager holds at least [n] installed ends (used by
    freshly introduced parties). *)
val wait_for_links : Sodal.env -> manager -> n:int -> unit
