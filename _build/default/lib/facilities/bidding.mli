(** Bidding support as a library (§6.17.5).

    DISCOVER returns the set of advertisers but no way to discriminate
    among them. The paper sketches the extension: let servers report how
    busy they are, and let requesters pick the least loaded. We build it
    without kernel changes: each bidding server also advertises a BID entry
    derived from its service pattern, answering a GET with its current
    load; [select] discovers all advertisers, collects bids, and returns
    the lowest bidder. *)

module Types = Soda_base.Types
module Sodal = Soda_runtime.Sodal

(** The BID entry derived from a service pattern. *)
val bid_pattern : Soda_base.Pattern.t -> Soda_base.Pattern.t

(** Server side: [serve_bids env ~pattern ~load] advertises both the
    service pattern and its BID entry; arriving bid GETs are answered from
    [load ()]. Call from the Initialization section; bids are answered by
    the returned request-hook, which must be invoked from [on_request]
    (returns true when it consumed the request). *)
val serve_bids :
  Sodal.env ->
  pattern:Soda_base.Pattern.t ->
  load:(unit -> int) ->
  (Sodal.env -> Sodal.request_info -> bool)

(** [select env ~pattern] returns the least-loaded advertiser (ties to the
    lowest mid), with its reported load. [None] if nobody advertises. *)
val select :
  Sodal.env -> pattern:Soda_base.Pattern.t -> ?max_bidders:int -> unit ->
  (Types.server_signature * int) option
