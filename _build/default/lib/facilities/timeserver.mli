(** Timeserver: alarms and timeouts (§4.3.2, §4.4.3).

    SODA deliberately has no timeouts in its primitives; an impatient
    client registers a wakeup with a timeserver — a non-blocking SIGNAL
    whose argument is the delay — and is notified by the completion of that
    SIGNAL when the alarm expires. It may then CANCEL its outstanding
    requests and take alternative action. *)

module Types = Soda_base.Types
module Sodal = Soda_runtime.Sodal

(** The ALARM_CLOCK pattern (well-known). *)
val alarm_pattern : Soda_base.Pattern.t

(** [spec ~tick_us] builds the timeserver program ([tick_us] is the
    hardware-clock granularity; alarms fire on tick boundaries). *)
val spec : ?tick_us:int -> unit -> Sodal.spec

(** [alarm env server ~delay_us] registers a wakeup; the returned tid's
    completion is the alarm ringing. *)
val alarm : Sodal.env -> Types.server_signature -> delay_us:int -> Types.tid

(** [sleep env server ~delay_us] blocks until the alarm fires. *)
val sleep : Sodal.env -> Types.server_signature -> delay_us:int -> unit

(** [with_timeout env server ~delay_us f] runs [f ()], which must return
    the tid of a request it issued; if the alarm fires before that request
    completes, the request is CANCELLED and [None] returned; otherwise the
    completion is returned. Demonstrates the §4.3.2 pattern. *)
val with_timeout :
  Sodal.env ->
  Types.server_signature ->
  delay_us:int ->
  (unit -> Types.tid) ->
  Sodal.completion_info option
