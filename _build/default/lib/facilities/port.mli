(** Input ports and priority queues over SODA (§4.2.1).

    An input port is a queueing point for incoming messages: many writers,
    one reader. The server advertises the port pattern; its handler only
    enqueues REQUESTER SIGNATURES (closing the handler when the queue
    fills, for flow control); the task dequeues and ACCEPTs, which is when
    data actually moves — the kernel buffers no data (§6.13).

    A priority queue is the same structure except that the REQUEST argument
    is interpreted as a priority and the task completes the highest
    priority entry first. *)

module Types = Soda_base.Types
module Sodal = Soda_runtime.Sodal

type discipline =
  | Fifo
  | Priority  (** highest REQUEST argument first; FIFO among equals *)

(** [spec ~pattern ~queue_len ~item_size ~on_data] builds a complete port
    server program: every message written to the port is passed to
    [on_data env ~arg data]. *)
val spec :
  pattern:Soda_base.Pattern.t ->
  ?discipline:discipline ->
  ?queue_len:int ->
  ?item_size:int ->
  on_data:(Sodal.env -> arg:int -> bytes -> unit) ->
  unit ->
  Sodal.spec

(** [writer env sig data] writes to a remote port (a blocking PUT);
    returns the completion. [arg] is the priority under [Priority]. *)
val write : Sodal.env -> Types.server_signature -> ?arg:int -> bytes -> Sodal.completion_info
