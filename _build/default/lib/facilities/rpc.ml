module Types = Soda_base.Types
module Pattern = Soda_base.Pattern
module Sodal = Soda_runtime.Sodal

type procedure = Sodal.env -> bytes -> bytes

type error = Server_crashed | Call_rejected

(* Per-caller call assembly (§4.2.2): the PUT (parameters) is ACCEPTed
   right away in the handler — the caller's blocking PUT must complete so
   that it can issue its GET — and the GET's signature is held until the
   procedure has run. *)
type pending_call = {
  pattern : Pattern.t;
  mutable params : bytes option;
  mutable get : Types.requester_signature option;
}

type ready_call = {
  rc_pattern : Pattern.t;
  rc_params : bytes;
  rc_get : Types.requester_signature;
}

let spec ?(max_params = 1024) procedures =
  let table = Hashtbl.create 8 in
  List.iter (fun (p, f) -> Hashtbl.replace table (Pattern.to_int p) f) procedures;
  let pending : (int * int, pending_call) Hashtbl.t = Hashtbl.create 8 in
  let ready = Queue.create () in
  {
    Sodal.default_spec with
    init =
      (fun env ~parent:_ ->
        List.iter (fun (p, _) -> Sodal.advertise env p) procedures);
    on_request =
      (fun env info ->
        let key = (info.Sodal.asker.Types.rq_mid, Pattern.to_int info.Sodal.pattern) in
        let call =
          match Hashtbl.find_opt pending key with
          | Some c -> c
          | None ->
            let c = { pattern = info.Sodal.pattern; params = None; get = None } in
            Hashtbl.replace pending key c;
            c
        in
        if info.Sodal.put_size > 0 then begin
          let into = Bytes.create (min info.Sodal.put_size max_params) in
          let status, got = Sodal.accept_current_put env ~arg:0 ~into in
          match status with
          | Types.Accept_success -> call.params <- Some (Bytes.sub into 0 got)
          | Types.Accept_cancelled | Types.Accept_crashed -> ()
        end
        else call.get <- Some info.Sodal.asker;
        match call.params, call.get with
        | Some params, Some get ->
          Hashtbl.remove pending key;
          Queue.push { rc_pattern = call.pattern; rc_params = params; rc_get = get } ready
        | _ -> ());
    task =
      (fun env ->
        while true do
          if not (Queue.is_empty ready) then begin
            let call = Queue.pop ready in
            match Hashtbl.find_opt table (Pattern.to_int call.rc_pattern) with
            | Some procedure ->
              let results = procedure env call.rc_params in
              ignore (Sodal.accept_get env call.rc_get ~arg:0 ~data:results)
            | None -> Sodal.reject_request env call.rc_get
          end
          else Sodal.idle env
        done);
  }

let call env server params ~result_size =
  let put_completion = Sodal.b_put env server ~arg:0 params in
  match put_completion.Sodal.status with
  | Sodal.Comp_crashed | Sodal.Comp_unadvertised -> Error Server_crashed
  | Sodal.Comp_rejected -> Error Call_rejected
  | Sodal.Comp_ok ->
    let into = Bytes.create result_size in
    let get_completion = Sodal.b_get env server ~arg:0 ~into in
    (match get_completion.Sodal.status with
     | Sodal.Comp_ok -> Ok (Bytes.sub into 0 get_completion.Sodal.get_transferred)
     | Sodal.Comp_rejected -> Error Call_rejected
     | Sodal.Comp_crashed | Sodal.Comp_unadvertised -> Error Server_crashed)

let call_any env ~pattern params ~result_size =
  match Sodal.discover_list env pattern ~max:16 with
  | [] -> Error Server_crashed
  | candidates ->
    let rec attempt = function
      | [] -> Error Server_crashed
      | mid :: rest ->
        (match call env (Sodal.server ~mid ~pattern) params ~result_size with
         | Ok result -> Ok (result, mid)
         | Error Call_rejected -> Error Call_rejected
         | Error Server_crashed -> attempt rest)
    in
    attempt candidates
