module Types = Soda_base.Types
module Pattern = Soda_base.Pattern
module Sodal = Soda_runtime.Sodal

(* The bid entry reuses the service pattern's bits with a distinguishing
   tag in the upper name field, keeping the pairing deterministic for both
   sides without a registry. *)
let bid_tag = 0x2A lsl 32

let bid_pattern pattern =
  let base = Pattern.to_int pattern land ((1 lsl 32) - 1) in
  if Pattern.is_reserved pattern then invalid_arg "Bidding.bid_pattern: reserved pattern";
  Pattern.well_known (bid_tag lor base)

let encode_load load =
  let b = Bytes.create 4 in
  for i = 0 to 3 do
    Bytes.set b i (Char.chr ((load lsr (8 * (3 - i))) land 0xFF))
  done;
  b

let decode_load b =
  if Bytes.length b < 4 then None
  else begin
    let v = ref 0 in
    for i = 0 to 3 do
      v := (!v lsl 8) lor Char.code (Bytes.get b i)
    done;
    Some !v
  end

let serve_bids env ~pattern ~load =
  Sodal.advertise env pattern;
  let bids = bid_pattern pattern in
  Sodal.advertise env bids;
  fun env info ->
    if Pattern.equal info.Sodal.pattern bids then begin
      ignore (Sodal.accept_current_get env ~arg:0 ~data:(encode_load (load ())));
      true
    end
    else false

let select env ~pattern ?(max_bidders = 16) () =
  let bids = bid_pattern pattern in
  let candidates = Sodal.discover_list env pattern ~max:max_bidders in
  let best = ref None in
  List.iter
    (fun mid ->
      let into = Bytes.create 4 in
      let c = Sodal.b_get env (Sodal.server ~mid ~pattern:bids) ~arg:0 ~into in
      match c.Sodal.status, decode_load into with
      | Sodal.Comp_ok, Some load ->
        (match !best with
         | Some (_, best_load) when best_load <= load -> ()
         | _ -> best := Some (mid, load))
      | _, _ -> ())
    candidates;
  Option.map (fun (mid, load) -> (Sodal.server ~mid ~pattern, load)) !best
