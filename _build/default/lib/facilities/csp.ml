module Types = Soda_base.Types
module Pattern = Soda_base.Pattern
module Sodal = Soda_runtime.Sodal

let csp_name = Pattern.well_known 0o5050

type guard =
  | Output of { peer : int; chan : int; data : bytes }
  | Input of { peer : int option; chan : int }

type outcome = { index : int; peer : int; data : bytes }

type state = Active | Querying | Waiting

type parked = { p_asker : Types.requester_signature; p_chan : int; p_size : int }

type process = {
  mutable state : state;
  mutable query_pending : bool;
  mutable delayed : parked list;  (* reverse arrival order *)
  mutable matched : outcome option;
  mutable inputs : (int * guard) list;  (* (guard index, Input _) of the live alternative *)
}

let input_match process ~src ~chan =
  List.find_opt
    (fun (_, g) ->
      match g with
      | Input { peer; chan = c } -> c = chan && (peer = None || peer = Some src)
      | Output _ -> false)
    process.inputs

(* Accept a (possibly parked) incoming output command, completing one of
   our input guards. Runs in handler or task context. *)
let accept_incoming env process ~asker ~size ~guard_index =
  let into = Bytes.create size in
  let status, got = Sodal.accept_put env asker ~arg:0 ~into in
  match status with
  | Types.Accept_success ->
    process.matched <-
      Some { index = guard_index; peer = asker.Types.rq_mid; data = Bytes.sub into 0 got };
    process.state <- Active;
    process.inputs <- [];
    true
  | Types.Accept_cancelled | Types.Accept_crashed -> false

let make ~task =
  let process =
    { state = Active; query_pending = false; delayed = []; matched = None; inputs = [] }
  in
  let spec =
    {
      Sodal.default_spec with
      Sodal.init = (fun env ~parent:_ -> Sodal.advertise env csp_name);
      on_request =
        (fun env info ->
          let src = info.Sodal.asker.Types.rq_mid in
          let chan = info.Sodal.arg in
          match process.state, input_match process ~src ~chan with
          | Waiting, Some (guard_index, _) ->
            ignore
              (accept_incoming env process ~asker:info.Sodal.asker
                 ~size:info.Sodal.put_size ~guard_index)
          | Querying, Some _
            when process.query_pending && Sodal.my_mid env > src ->
            (* Both of us are querying; the higher mid delays the lower
               (Bernstein's tie-break). *)
            process.delayed <-
              { p_asker = info.Sodal.asker; p_chan = chan; p_size = info.Sodal.put_size }
              :: process.delayed
          | (Active | Querying | Waiting), _ ->
            (* No match, or we are mid-query with a lower mid: REJECT; the
               peer will retry or pair elsewhere. *)
            Sodal.reject env);
      task = (fun env -> task env process);
    }
  in
  (process, spec)

let flush_delayed env process =
  let parked = process.delayed in
  process.delayed <- [];
  List.iter (fun p -> Sodal.reject_request env p.p_asker) parked

(* Try to complete one parked query against the current input guards. *)
let try_delayed env process =
  let rec scan = function
    | [] -> false
    | parked :: rest ->
      (match input_match process ~src:parked.p_asker.Types.rq_mid ~chan:parked.p_chan with
       | Some (guard_index, _) ->
         process.delayed <- List.filter (fun p -> p != parked) process.delayed;
         if
           accept_incoming env process ~asker:parked.p_asker ~size:parked.p_size
             ~guard_index
         then true
         else scan rest
       | None -> scan rest)
  in
  scan (List.rev process.delayed)

let wait_interval_us = 15_000

let select env process guards =
  let indexed = List.mapi (fun i g -> (i, g)) guards in
  let dead = Array.make (List.length guards) false in
  process.matched <- None;
  process.inputs <-
    List.filter (fun (_, g) -> match g with Input _ -> true | Output _ -> false) indexed;
  let outputs () =
    List.filter
      (fun (i, g) -> match g with Output _ -> not dead.(i) | Input _ -> false)
      indexed
  in
  let finish result =
    process.state <- Active;
    process.inputs <- [];
    process.query_pending <- false;
    flush_delayed env process;
    result
  in
  let rec round () =
    if process.matched <> None then finish process.matched
    else begin
      process.state <- Querying;
      let rec try_outputs = function
        | [] -> None
        | (i, Output { peer; chan; data }) :: rest ->
          process.query_pending <- true;
          let c = Sodal.b_put env (Sodal.server ~mid:peer ~pattern:csp_name) ~arg:chan data in
          process.query_pending <- false;
          (match c.Sodal.status with
           | Sodal.Comp_ok -> Some { index = i; peer; data = Bytes.empty }
           | Sodal.Comp_crashed | Sodal.Comp_unadvertised ->
             (* CSP: a guard whose named process has terminated fails. *)
             dead.(i) <- true;
             try_outputs rest
           | Sodal.Comp_rejected ->
             (* The peer could not take us now. Give a parked lower-mid
                query its chance, which may complete one of our inputs. *)
             if process.matched = None && try_delayed env process then None
             else try_outputs rest)
        | (_, Input _) :: rest -> try_outputs rest
      in
      match try_outputs (outputs ()) with
      | Some outcome -> finish (Some outcome)
      | None ->
        if process.matched <> None then finish process.matched
        else begin
          let live_outputs = outputs () <> [] in
          let live_inputs = process.inputs <> [] in
          if (not live_outputs) && not live_inputs then finish None
          else begin
            (* Nothing matched this round: become WAITING so incoming
               queries can complete an input guard; re-query outputs after
               a beat (the paper's processes are re-woken by new arrivals;
               we also retry rejected outputs, which preserves safety). *)
            process.state <- Waiting;
            (match try_delayed env process with
             | true -> ()
             | false ->
               let deadline = Sodal.now env + wait_interval_us in
               while process.matched = None && Sodal.now env < deadline do
                 Sodal.compute env 2_000
               done);
            round ()
          end
        end
    end
  in
  round ()

let output env process ~peer ~chan data =
  match select env process [ Output { peer; chan; data } ] with
  | Some _ -> true
  | None -> false

let input env process ?peer ~chan () = select env process [ Input { peer; chan } ]
