(** Remote procedure call over SODA (§4.2.2).

    The caller PUTs the in-parameters and then issues a blocking GET for
    the results; both use the pattern bound to the remote procedure. The
    server invokes the procedure once both REQUESTs have arrived, ACCEPTing
    the PUT to obtain the parameters and ACCEPTing the GET (which unblocks
    the caller) to return the results.

    Unlike the single-caller sketch in the paper, this implementation keys
    call state by caller machine, so concurrent calls from different
    machines are serviced in arrival order. *)

module Types = Soda_base.Types
module Sodal = Soda_runtime.Sodal

(** A procedure: in-parameters to out-parameters, running in the server's
    task (it may block, issue requests, etc.). *)
type procedure = Sodal.env -> bytes -> bytes

(** [spec procedures] builds an RPC server exporting each (pattern,
    procedure) pair. *)
val spec : ?max_params:int -> (Soda_base.Pattern.t * procedure) list -> Sodal.spec

type error =
  | Server_crashed
  | Call_rejected  (** the server REJECTed (negative accept argument) *)

(** [call env server params ~result_size] performs the two-request call
    sequence. *)
val call :
  Sodal.env ->
  Types.server_signature ->
  bytes ->
  result_size:int ->
  (bytes, error) result

(** [call_any env ~pattern params] — the crash-recovery pattern of §4.2.2:
    "should the machine executing the remote subroutine crash, the caller
    should be informed so that the call may be repeated using a different
    machine". Discovers the advertisers and tries each until one answers.
    NOTE: the procedure may have executed on a machine that crashed after
    running it — at-least-once semantics, as with any simple RPC retry. *)
val call_any :
  Sodal.env ->
  pattern:Soda_base.Pattern.t ->
  bytes ->
  result_size:int ->
  (bytes * int, error) result
