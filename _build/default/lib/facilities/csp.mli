(** CSP-style guarded communication with output guards, via Bernstein's
    algorithm (§4.2.5.1).

    Symmetric rendezvous is deadlock-prone: if two processes query each
    other simultaneously and both block, nothing proceeds (figure
    "Deadlock Danger in Symmetric Rendezvous"). Bernstein's algorithm
    breaks the symmetry with machine-id ordering: a process that receives a
    query while itself querying {e delays} the incoming query only when its
    own mid is higher; otherwise it REJECTs, which unblocks the lower-mid
    process and lets exactly one pairing win.

    Each CSP process advertises the well-known name pattern; an output
    command is a blocking PUT whose argument is the channel tag. *)

module Types = Soda_base.Types
module Sodal = Soda_runtime.Sodal

type guard =
  | Output of { peer : int; chan : int; data : bytes }
      (** [peer ! data] on channel [chan] *)
  | Input of { peer : int option; chan : int }
      (** [peer ? x]; [None] accepts any sender on [chan] *)

type outcome = {
  index : int;  (** which guard fired *)
  peer : int;
  data : bytes;  (** received value for an [Input], empty for [Output] *)
}

type process

(** [make ()] returns the process state and its client program. Run your
    CSP code in [task]. *)
val make : task:(Sodal.env -> process -> unit) -> process * Sodal.spec

(** [select env p guards] evaluates an alternative command: blocks until
    exactly one guard communicates, and returns it. Returns [None] when
    every guard's peer has terminated (the CSP alternative fails). *)
val select : Sodal.env -> process -> guard list -> outcome option

(** Convenience: a lone output command [peer ! data]. *)
val output : Sodal.env -> process -> peer:int -> chan:int -> bytes -> bool

(** Convenience: a lone input command. *)
val input : Sodal.env -> process -> ?peer:int -> chan:int -> unit -> outcome option
