(** Multipacket streams as a library (§6.17.4).

    SODA messages are bounded by the kernel buffer; "arbitrarily long
    transmissions are supportable by higher-level protocols that packetize
    and reassemble large blocks of data", and the paper reports that
    client-driven streaming performs well (§5.5's large-words rows are the
    per-chunk cost). This module is that protocol: a sender slices a block
    into chunks and PUTs them in order — keeping up to MAXREQUESTS-1 chunks
    in flight for double buffering — with a final zero-length end marker;
    the receiver reassembles using the chunk index carried in the REQUEST
    argument.

    Because SODA already guarantees per-peer ordering and exactly-once
    delivery, reassembly needs no sequence checking of its own; the index
    is used only to detect protocol misuse. *)

module Types = Soda_base.Types
module Sodal = Soda_runtime.Sodal

(** Receiver side: [sink ~pattern ~on_block] yields a complete server spec
    whose handler reassembles incoming streams (one concurrent stream per
    sending machine) and calls [on_block] with each finished block. *)
val sink :
  pattern:Soda_base.Pattern.t ->
  on_block:(Sodal.env -> src:int -> bytes -> unit) ->
  unit ->
  Sodal.spec

(** A hook version for embedding in an existing program: returns
    [(on_request_hook)] which consumes stream chunks addressed to
    [pattern] (returns false for unrelated requests). *)
val sink_hook :
  pattern:Soda_base.Pattern.t ->
  on_block:(Sodal.env -> src:int -> bytes -> unit) ->
  Sodal.env ->
  Sodal.request_info ->
  bool

type error =
  | Receiver_gone  (** the sink crashed or unadvertised mid-stream *)
  | Rejected

(** [send env dst data ~chunk_bytes] streams [data] to the sink at [dst].
    Blocks until the final chunk is acknowledged. *)
val send :
  Sodal.env ->
  Types.server_signature ->
  ?chunk_bytes:int ->
  bytes ->
  (unit, error) result
