lib/baseline/starmod.ml: Bytes Char Hashtbl Option Queue Soda_net Soda_sim
