lib/baseline/starmod.mli: Soda_net Soda_sim
