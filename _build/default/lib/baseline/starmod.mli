(** The comparison baseline: *MOD-style remote port calls (§2.2.5, §5.5).

    Leblanc measured *MOD message primitives on the same PDP-11/Megalink
    hardware as SODA: a synchronous remote port call took 20.7 ms and an
    asynchronous port call 11.1 ms, versus SODA's 8.5/10.0 ms blocking and
    4.9/5.8 ms non-blocking SIGNALs. The structural difference is the
    multiprogrammed kernel: every message crosses a user/kernel boundary,
    is buffered in kernel space, demultiplexed to the right process, and
    waits for the scheduler — and the simple transport acks every packet
    separately instead of piggybacking.

    This module reproduces that structure over the same simulated bus:
    ports with kernel-side message queues, per-message process wakeups, a
    stop-and-wait transport with standalone acks, and cost constants
    matching a multiprogrammed PDP-11 kernel. *)

type node

type cost = {
  trap_us : int;  (** user->kernel boundary crossing *)
  packet_us : int;  (** kernel protocol work per packet sent or received *)
  buffer_copy_us : int;  (** kernel-space message buffering, per message *)
  schedule_us : int;  (** scheduler + context switch to wake a process *)
  dispatch_us : int;  (** port demultiplexing per delivered message *)
}

val default_cost : cost

val create_node :
  engine:Soda_sim.Engine.t -> bus:Soda_net.Bus.t -> mid:int -> ?cost:cost -> unit -> node

val stats : node -> Soda_sim.Stats.t

(** [define_port node ~port f] — messages to [port] run [f payload]; a
    [Some reply] is sent back to a synchronous caller. *)
val define_port : node -> port:int -> (bytes -> bytes option) -> unit

(** Synchronous remote port call: blocks (callback) until the reply
    arrives. *)
val sync_call : node -> dst:int -> port:int -> bytes -> on_reply:(bytes -> unit) -> unit

(** Asynchronous port call: [on_done] fires when the message has been
    delivered into the remote port queue (transport-acknowledged). *)
val async_send : node -> dst:int -> port:int -> bytes -> on_done:(unit -> unit) -> unit
