type dst = To of int | Broadcast

type t = { src : int; dst : dst; wire : bytes }

let dst_matches dst ~mid =
  match dst with
  | To m -> m = mid
  | Broadcast -> true

let pp_dst ppf = function
  | To m -> Format.fprintf ppf "mid:%d" m
  | Broadcast -> Format.pp_print_string ppf "broadcast"
