(** CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF), as computed by the
    simulated Megalink interface to detect transmission errors. A frame
    whose CRC does not match is silently discarded by the receiving NIC,
    exactly as in §5.2.2 of the paper. *)

(** [compute bytes ~off ~len] returns the 16-bit checksum. *)
val compute : bytes -> off:int -> len:int -> int

(** [append payload] returns [payload] with its 2-byte big-endian CRC
    appended. *)
val append : bytes -> bytes

(** [check wire] verifies a frame produced by [append]; returns the payload
    without the trailer on success. *)
val check : bytes -> bytes option
