lib/net/crc16.mli:
