lib/net/bus.ml: Bytes Char Crc16 Frame Hashtbl List Printf Soda_sim
