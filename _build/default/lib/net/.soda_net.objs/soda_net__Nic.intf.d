lib/net/nic.mli: Bus
