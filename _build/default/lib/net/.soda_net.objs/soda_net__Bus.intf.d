lib/net/bus.mli: Frame Soda_sim
