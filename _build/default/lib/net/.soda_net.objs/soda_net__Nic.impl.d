lib/net/nic.ml: Bus Crc16 Frame
