lib/net/crc16.ml: Array Bytes Char Lazy
