lib/net/frame.mli: Format
