(** Shared SODA vocabulary (§3.1, §3.7). *)

(** Machine id: network-wide unique node identifier. Machine 0 is the
    privileged node allowed to alter reserved patterns (§3.5.4). *)
type mid = int

(** Transaction id, unique per issuing node across all time (§3.3.1). *)
type tid = int

(** <MID, TID>: uniquely identifies a request across the network. *)
type requester_signature = { rq_mid : mid; rq_tid : tid }

(** Destination of a REQUEST: a specific machine or the BROADCAST
    identifier used by DISCOVER (§3.4.4). *)
type target = Mid of mid | Broadcast_mid

(** <MID, PATTERN>: names a service entry point. *)
type server_signature = { sv_mid : target; sv_pattern : Pattern.t }

(** Status returned by ACCEPT (§3.7.4). *)
type accept_status =
  | Accept_success
  | Accept_cancelled  (** request was cancelled or already completed *)
  | Accept_crashed  (** requester crashed (or died) before/after issue *)

(** How a REQUEST completed, as seen by the requester's handler (§3.7.6). *)
type completion_status =
  | Completed  (** ACCEPTed; argument and transfer counts are valid *)
  | Crashed  (** server crashed before accepting *)
  | Unadvertised  (** pattern not advertised at the server *)

(** Arguments passed to the client handler on invocation (§3.7.6). *)
type handler_event =
  | Request_arrival of {
      requester : requester_signature;
      pattern : Pattern.t;  (** the SERVER SIGNATURE pattern used *)
      arg : int;
      put_size : int;  (** bytes offered by the requester *)
      get_size : int;  (** bytes the requester can receive *)
    }
  | Request_completion of {
      requester : requester_signature;  (** our own <mid, tid> *)
      status : completion_status;
      arg : int;  (** the ACCEPT argument (valid when [Completed]) *)
      put_transferred : int;  (** bytes that went requester -> server *)
      get_transferred : int;  (** bytes that went server -> requester *)
    }
  | Booting of { parent : mid }

val broadcast : target

val requester_signature_equal : requester_signature -> requester_signature -> bool

val pp_requester_signature : Format.formatter -> requester_signature -> unit
val pp_server_signature : Format.formatter -> server_signature -> unit
val pp_accept_status : Format.formatter -> accept_status -> unit
val pp_completion_status : Format.formatter -> completion_status -> unit
val pp_handler_event : Format.formatter -> handler_event -> unit
