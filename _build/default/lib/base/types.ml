type mid = int
type tid = int

type requester_signature = { rq_mid : mid; rq_tid : tid }

type target = Mid of mid | Broadcast_mid

type server_signature = { sv_mid : target; sv_pattern : Pattern.t }

type accept_status = Accept_success | Accept_cancelled | Accept_crashed

type completion_status = Completed | Crashed | Unadvertised

type handler_event =
  | Request_arrival of {
      requester : requester_signature;
      pattern : Pattern.t;
      arg : int;
      put_size : int;
      get_size : int;
    }
  | Request_completion of {
      requester : requester_signature;
      status : completion_status;
      arg : int;
      put_transferred : int;
      get_transferred : int;
    }
  | Booting of { parent : mid }

let broadcast = Broadcast_mid

let requester_signature_equal a b = a.rq_mid = b.rq_mid && a.rq_tid = b.rq_tid

let pp_requester_signature ppf { rq_mid; rq_tid } =
  Format.fprintf ppf "<%d,#%d>" rq_mid rq_tid

let pp_server_signature ppf { sv_mid; sv_pattern } =
  (match sv_mid with
   | Mid m -> Format.fprintf ppf "<%d," m
   | Broadcast_mid -> Format.fprintf ppf "<*,");
  Format.fprintf ppf "%a>" Pattern.pp sv_pattern

let pp_accept_status ppf = function
  | Accept_success -> Format.pp_print_string ppf "SUCCESS"
  | Accept_cancelled -> Format.pp_print_string ppf "CANCELLED"
  | Accept_crashed -> Format.pp_print_string ppf "CRASHED"

let pp_completion_status ppf = function
  | Completed -> Format.pp_print_string ppf "COMPLETED"
  | Crashed -> Format.pp_print_string ppf "CRASHED"
  | Unadvertised -> Format.pp_print_string ppf "UNADVERTISED"

let pp_handler_event ppf = function
  | Request_arrival { requester; pattern; arg; put_size; get_size } ->
    Format.fprintf ppf "arrival(%a, %a, arg=%d, put=%d, get=%d)"
      pp_requester_signature requester Pattern.pp pattern arg put_size get_size
  | Request_completion { requester; status; arg; put_transferred; get_transferred } ->
    Format.fprintf ppf "completion(%a, %a, arg=%d, put=%d, get=%d)"
      pp_requester_signature requester pp_completion_status status arg put_transferred
      get_transferred
  | Booting { parent } -> Format.fprintf ppf "booting(parent=%d)" parent
