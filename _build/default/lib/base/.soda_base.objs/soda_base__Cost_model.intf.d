lib/base/cost_model.mli:
