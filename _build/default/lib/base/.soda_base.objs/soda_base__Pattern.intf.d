lib/base/pattern.mli: Format
