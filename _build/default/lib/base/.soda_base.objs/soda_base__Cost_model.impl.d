lib/base/cost_model.ml:
