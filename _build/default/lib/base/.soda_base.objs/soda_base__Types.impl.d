lib/base/types.ml: Format Pattern
