lib/base/pattern.ml: Format Int Printf
