lib/base/types.mli: Format Pattern
