type t = int

let patternsize_bits = 48

let mask = (1 lsl patternsize_bits) - 1
let reserved_bit = 1 lsl 47
let well_known_bit = 1 lsl 46

let of_int i =
  if i land lnot mask <> 0 || i < 0 then
    invalid_arg (Printf.sprintf "Pattern.of_int: %d does not fit in %d bits" i patternsize_bits);
  i

let to_int t = t

let well_known i =
  if i < 0 || i land lnot ((1 lsl 40) - 1) <> 0 then
    invalid_arg "Pattern.well_known: name must fit in 40 bits";
  well_known_bit lor i

let reserved i =
  if i < 0 || i land lnot ((1 lsl 40) - 1) <> 0 then
    invalid_arg "Pattern.reserved: name must fit in 40 bits";
  reserved_bit lor well_known_bit lor i

let is_reserved t = t land reserved_bit <> 0
let is_well_known t = t land well_known_bit <> 0

let slot t = t land 0xFF

let equal = Int.equal
let compare = Int.compare

let pp ppf t =
  Format.fprintf ppf "%s%#x"
    (if is_reserved t then "R:" else if is_well_known t then "W:" else "U:")
    (t land ((1 lsl 40) - 1))

let kill_pattern = reserved 0x01
let system_pattern = reserved 0x02
let boot_pattern kind =
  if kind < 0 || kind > 0xFF then invalid_arg "Pattern.boot_pattern: kind in 0..255";
  reserved (0x100 lor kind)

module Mint = struct
  type pattern = t

  type t = { serial : int; boot_floor : int; mutable counter : int }

  let counter_mask = (1 lsl 32) - 1

  let create ~serial ~boot_clock =
    if serial < 0 || serial > 0xFF then invalid_arg "Mint.create: serial in 0..255";
    let start = boot_clock land counter_mask in
    { serial; boot_floor = start; counter = start }

  let boot_floor t = t.boot_floor
  let ceiling t = t.counter

  let next t =
    let v = t.counter in
    t.counter <- (t.counter + 1) land counter_mask;
    v

  (* 40-bit unique value: serial in the top 8 of 40 bits, counter below. *)
  let fresh40 t = (t.serial lsl 32) lor next t

  let fresh_pattern t = fresh40 t

  let fresh_reserved t = reserved_bit lor fresh40 t

  let fresh_tid t = (t.serial lsl 32) lor next t
end
