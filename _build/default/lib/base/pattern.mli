(** SODA patterns (§3.4, §5.4).

    A pattern is a PATTERNSIZE-bit string used as the service half of a
    SERVER SIGNATURE. We reproduce the experimental implementation of §5.4:

    - PATTERNSIZE = 48 bits, stored in a native OCaml int;
    - bit 47 distinguishes RESERVED patterns (interpreted by the kernel)
      from CLIENT patterns (bindable with ADVERTISE);
    - bit 46 distinguishes well-known patterns from ids minted by
      GETUNIQUEID, so the two name spaces can never collide (§6.14);
    - GETUNIQUEID returns 40 significant bits: an 8-bit node serial number
      concatenated with a 32-bit boot-seeded counter;
    - the top eight bits of a pattern index a 256-slot advertisement table
      (see {!slot}); two advertised patterns agreeing on those bits
      overwrite each other, as documented in §5.4. *)

type t = private int

val patternsize_bits : int

(** [of_int i] validates that [i] fits in PATTERNSIZE bits.
    @raise Invalid_argument otherwise. *)
val of_int : int -> t

val to_int : t -> int

(** [well_known i] builds a well-known client pattern from up to 40 bits of
    user-chosen name (the SODAL [%0123] literal form). *)
val well_known : int -> t

(** [reserved i] builds a well-known reserved pattern (kernel use only). *)
val reserved : int -> t

val is_reserved : t -> bool
val is_well_known : t -> bool

(** [slot p] is the advertisement-table index: the low byte of the
    48-bit string (GETUNIQUEID increments that byte fastest, so minted
    ids spread across slots). *)
val slot : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** Pre-assigned reserved patterns (bound at SODA creation time, §3.7.7.1).
    [boot_pattern kind] encodes the client-processor type so that parents
    can DISCOVER suitable free machines. *)

val kill_pattern : t
val system_pattern : t
val boot_pattern : int -> t

(** Unique-id mint shared by GETUNIQUEID and TID generation (§5.4). *)
module Mint : sig
  type pattern = t
  type t

  (** [create ~serial ~boot_clock] seeds the 32-bit counter from a
      monotonic clock so that reboots never reuse ids. *)
  val create : serial:int -> boot_clock:int -> t

  (** Counter value at creation; accepts of TIDs below this value are
      stale (issued before the last reboot). *)
  val boot_floor : t -> int

  (** Current counter ceiling (exclusive). *)
  val ceiling : t -> int

  (** [fresh_pattern t] implements GETUNIQUEID: a unique client pattern. *)
  val fresh_pattern : t -> pattern

  (** [fresh_reserved t] mints a unique RESERVED pattern (LOAD patterns). *)
  val fresh_reserved : t -> pattern

  (** [fresh_tid t] mints a transaction id from the same counter. *)
  val fresh_tid : t -> int
end
