(* Abstract syntax of SODAL (§4.1): a small Modula/Pascal-flavoured
   language whose programs are divided into Initialization, Handler and
   Task sections, with `case ENTRY of` / `case COMPLETION of` dispatch in
   the handler and the blocking/non-blocking REQUEST variants as built-in
   procedures. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or

type unop = Not | Neg

type expr =
  | Int of int
  | Bool of bool
  | Str of string
  | Pattern_lit of int  (* %0123 literals *)
  | Var of string
  | Field of string * string  (* ASKER.MID etc. *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list  (* built-in functions *)

type stmt =
  | Assign of string * expr
  | If of (expr * stmt list) list * stmt list  (* branches, else *)
  | While of expr * stmt list
  | Loop of stmt list  (* loop ... forever *)
  | Expr of expr  (* built-in procedure call *)
  | Case_entry of (expr option * stmt list) list  (* None = OTHERWISE *)
  | Case_completion of (expr option * stmt list) list
  | Skip
  | Return

type decl =
  | Const of string * expr
  | Var_decl of string list * type_name

and type_name =
  | T_integer
  | T_boolean
  | T_string
  | T_pattern
  | T_signature
  | T_queue of int

type program = {
  name : string;
  decls : decl list;
  initialization : stmt list;
  handler : stmt list;
  task : stmt list;
}
