lib/sodal_lang/parser.mli: Ast
