lib/sodal_lang/ast.ml:
