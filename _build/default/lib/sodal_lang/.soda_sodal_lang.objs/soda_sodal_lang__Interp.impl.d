lib/sodal_lang/interp.ml: Ast Bytes Format Hashtbl List Parser Printf Soda_base Soda_runtime String
