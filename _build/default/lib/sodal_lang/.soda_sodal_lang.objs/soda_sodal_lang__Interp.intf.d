lib/sodal_lang/interp.mli: Ast Soda_core Soda_runtime
