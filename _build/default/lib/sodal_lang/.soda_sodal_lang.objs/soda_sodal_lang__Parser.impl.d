lib/sodal_lang/parser.ml: Ast Format Lexer List String
