lib/sodal_lang/lexer.ml: Buffer Format List Printf String
