lib/sodal_lang/lexer.mli: Format
