(** Timestamped event trace.

    Used to reproduce the paper's "Typical Delta-t Situations" figure as an
    annotated timeline, and for debugging protocol state machines. Each
    entry is [(time_us, actor, message)]. Tracing is off by default and
    costs one branch per call when disabled. *)

type t

type entry = { time_us : int; actor : string; message : string }

val create : ?enabled:bool -> unit -> t

val set_enabled : t -> bool -> unit
val enabled : t -> bool

(** [record t ~now ~actor fmt ...] appends an entry when enabled. *)
val record : t -> now:int -> actor:string -> ('a, Format.formatter, unit, unit) format4 -> 'a

val entries : t -> entry list
val clear : t -> unit

(** [find t ~substring] returns entries whose message contains
    [substring]. *)
val find : t -> substring:string -> entry list

(** Renders "  12345 us  actor     message" lines. *)
val pp : Format.formatter -> t -> unit
