(* PCG32 (Melissa O'Neill): 64-bit LCG state, 32-bit xorshift-rotate output.
   All arithmetic is on boxed-free native int64 via the Int64 module; the
   output is truncated to 32 bits and returned as a non-negative int. *)

type t = { mutable state : int64; inc : int64 }

let multiplier = 6364136223846793005L

let next_state state inc =
  Int64.add (Int64.mul state multiplier) inc

(* splitmix64 step, used to expand the user seed into state/increment. *)
let splitmix64 x =
  let x = Int64.add x 0x9E3779B97F4A7C15L in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 30)) 0xBF58476D1CE4E5B9L in
  let x = Int64.mul (Int64.logxor x (Int64.shift_right_logical x 27)) 0x94D049BB133111EBL in
  Int64.logxor x (Int64.shift_right_logical x 31)

let create ~seed =
  let s0 = splitmix64 (Int64.of_int seed) in
  let s1 = splitmix64 s0 in
  (* The increment must be odd. *)
  let inc = Int64.logor (Int64.shift_left s1 1) 1L in
  let state = next_state (Int64.add s0 inc) inc in
  { state; inc }

let bits32 rng =
  let old = rng.state in
  rng.state <- next_state old rng.inc;
  let xorshifted =
    Int64.to_int
      (Int64.logand
         (Int64.shift_right_logical (Int64.logxor (Int64.shift_right_logical old 18) old) 27)
         0xFFFFFFFFL)
  in
  let rot = Int64.to_int (Int64.shift_right_logical old 59) in
  let rotated = (xorshifted lsr rot) lor (xorshifted lsl (32 - rot) land 0xFFFFFFFF) in
  rotated land 0xFFFFFFFF

let split rng =
  let s0 = splitmix64 (Int64.of_int (bits32 rng)) in
  let s1 = splitmix64 (Int64.logxor s0 rng.inc) in
  let inc = Int64.logor (Int64.shift_left s1 1) 1L in
  { state = next_state (Int64.add s0 inc) inc; inc }

let int rng bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let limit = 0xFFFFFFFF - (0x100000000 mod bound) in
  let rec draw () =
    let v = bits32 rng in
    if v <= limit then v mod bound else draw ()
  in
  draw ()

let float rng bound = float_of_int (bits32 rng) /. 4294967296.0 *. bound

let bool rng = bits32 rng land 1 = 1

let chance rng p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float rng 1.0 < p
