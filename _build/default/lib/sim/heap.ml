type 'a entry = { key : int; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
}

let initial_capacity = 64

let create () = { data = [||]; size = 0 }

let length heap = heap.size

let is_empty heap = heap.size = 0

let less a b = a.key < b.key || (a.key = b.key && a.seq < b.seq)

let grow heap entry =
  let capacity = Array.length heap.data in
  if heap.size = capacity then begin
    let next = if capacity = 0 then initial_capacity else capacity * 2 in
    let data = Array.make next entry in
    Array.blit heap.data 0 data 0 heap.size;
    heap.data <- data
  end

let rec sift_up data i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less data.(i) data.(parent) then begin
      let tmp = data.(i) in
      data.(i) <- data.(parent);
      data.(parent) <- tmp;
      sift_up data parent
    end
  end

let rec sift_down data size i =
  let left = (2 * i) + 1 in
  let right = left + 1 in
  let smallest = ref i in
  if left < size && less data.(left) data.(!smallest) then smallest := left;
  if right < size && less data.(right) data.(!smallest) then smallest := right;
  if !smallest <> i then begin
    let tmp = data.(i) in
    data.(i) <- data.(!smallest);
    data.(!smallest) <- tmp;
    sift_down data size !smallest
  end

let push heap ~key ~seq value =
  let entry = { key; seq; value } in
  grow heap entry;
  heap.data.(heap.size) <- entry;
  heap.size <- heap.size + 1;
  sift_up heap.data (heap.size - 1)

let pop_min heap =
  if heap.size = 0 then None
  else begin
    let root = heap.data.(0) in
    heap.size <- heap.size - 1;
    if heap.size > 0 then begin
      heap.data.(0) <- heap.data.(heap.size);
      sift_down heap.data heap.size 0
    end;
    Some (root.key, root.seq, root.value)
  end

let peek_key heap = if heap.size = 0 then None else Some heap.data.(0).key
