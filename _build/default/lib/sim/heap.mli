(** Binary min-heap specialised for the event queue.

    Elements are ordered by an integer key (the event time) with a
    monotonically increasing sequence number as a tie-breaker, so that two
    events scheduled for the same instant pop in insertion order. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push heap ~key ~seq value] inserts [value] with priority
    [(key, seq)]. *)
val push : 'a t -> key:int -> seq:int -> 'a -> unit

(** [pop_min heap] removes and returns the element with the smallest
    [(key, seq)], or [None] if the heap is empty. *)
val pop_min : 'a t -> (int * int * 'a) option

(** [peek_key heap] returns the smallest key without removing it. *)
val peek_key : 'a t -> int option
