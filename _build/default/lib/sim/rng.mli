(** Deterministic pseudo-random number generator (PCG32).

    Every simulated run is reproducible from a single integer seed. The
    generator is splittable so that independent subsystems (bus fault
    injection, backoff jitter, client workloads) draw from decorrelated
    streams while remaining deterministic. *)

type t

(** [create ~seed] builds a generator. Equal seeds yield equal streams. *)
val create : seed:int -> t

(** [split rng] derives an independent generator from [rng], advancing
    [rng]. *)
val split : t -> t

(** [bits32 rng] returns 32 uniformly random bits as a non-negative int. *)
val bits32 : t -> int

(** [int rng bound] returns a uniform integer in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)
val int : t -> int -> int

(** [float rng bound] returns a uniform float in [\[0, bound)]. *)
val float : t -> float -> float

(** [bool rng] returns a uniform boolean. *)
val bool : t -> bool

(** [chance rng p] is true with probability [p] (clamped to [\[0, 1\]]). *)
val chance : t -> float -> bool
