type entry = { time_us : int; actor : string; message : string }

type t = { mutable enabled : bool; mutable entries : entry list }

let create ?(enabled = false) () = { enabled; entries = [] }

let set_enabled t flag = t.enabled <- flag
let enabled t = t.enabled

let record t ~now ~actor fmt =
  Format.kasprintf
    (fun message ->
      if t.enabled then t.entries <- { time_us = now; actor; message } :: t.entries)
    fmt

let entries t = List.rev t.entries

let clear t = t.entries <- []

let contains ~substring s =
  let n = String.length substring and m = String.length s in
  if n = 0 then true
  else begin
    let rec scan i = i + n <= m && (String.sub s i n = substring || scan (i + 1)) in
    scan 0
  end

let find t ~substring =
  List.filter (fun e -> contains ~substring e.message) (entries t)

let pp ppf t =
  List.iter
    (fun e -> Format.fprintf ppf "%8d us  %-12s %s@." e.time_us e.actor e.message)
    (entries t)
