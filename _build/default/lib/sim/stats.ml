type t = {
  counters : (string, int ref) Hashtbl.t;
  times : (string, int ref) Hashtbl.t;
  series : (string, int list ref) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    times = Hashtbl.create 32;
    series = Hashtbl.create 32;
  }

let cell table name =
  match Hashtbl.find_opt table name with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.replace table name r;
    r

let incr t name = Stdlib.incr (cell t.counters name)
let add t name n = cell t.counters name := !(cell t.counters name) + n
let counter t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let add_time t name us = cell t.times name := !(cell t.times name) + us
let time_us t name = match Hashtbl.find_opt t.times name with Some r -> !r | None -> 0
let time_ms t name = float_of_int (time_us t name) /. 1000.0

let series_cell t name =
  match Hashtbl.find_opt t.series name with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.replace t.series name r;
    r

let sample t name v =
  let r = series_cell t name in
  r := v :: !r

let samples t name =
  match Hashtbl.find_opt t.series name with
  | Some r -> List.rev !r
  | None -> []

let count t name = List.length (samples t name)

let mean_us t name =
  match samples t name with
  | [] -> 0.0
  | xs ->
    let sum = List.fold_left ( + ) 0 xs in
    float_of_int sum /. float_of_int (List.length xs)

let mean_ms t name = mean_us t name /. 1000.0

let max_us t name = List.fold_left max 0 (samples t name)

let percentile_us t name p =
  match samples t name with
  | [] -> 0
  | xs ->
    let sorted = List.sort compare xs in
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    let idx = int_of_float (ceil (p /. 100.0 *. float_of_int n)) - 1 in
    arr.(max 0 (min (n - 1) idx))

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.times;
  Hashtbl.reset t.series

let counter_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.counters []
  |> List.sort compare

let pp ppf t =
  let names = counter_names t in
  List.iter (fun name -> Format.fprintf ppf "%s: %d@." name (counter t name)) names;
  Hashtbl.iter
    (fun name r -> Format.fprintf ppf "%s: %.3f ms@." name (float_of_int !r /. 1000.0))
    t.times
