lib/sim/rng.mli:
