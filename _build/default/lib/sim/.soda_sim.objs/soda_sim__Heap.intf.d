lib/sim/heap.mli:
