lib/proto/wire.mli: Format Soda_base
