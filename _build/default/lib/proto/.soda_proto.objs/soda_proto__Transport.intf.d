lib/proto/transport.mli: Soda_base Soda_net Soda_sim
