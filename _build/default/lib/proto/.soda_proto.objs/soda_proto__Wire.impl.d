lib/proto/wire.ml: Buffer Bytes Char Format Printf Soda_base
