lib/proto/transport.ml: Bytes Hashtbl List Option Printf Queue Soda_base Soda_net Soda_sim Wire
