(** The SODAL bounded QUEUE type (§4.1.4).

    [var q : QUEUE [n] of T] with the six operations of the paper:
    EnQueue, DeQueue, IsEmpty, IsFull, AlmostEmpty, AlmostFull. *)

type 'a t

exception Empty
exception Full

(** [create n] — a queue holding at most [n] elements ([n >= 1]). *)
val create : int -> 'a t

val capacity : 'a t -> int
val length : 'a t -> int

(** @raise Full when at capacity. *)
val enqueue : 'a t -> 'a -> unit

(** @raise Empty when empty. *)
val dequeue : 'a t -> 'a

val peek : 'a t -> 'a option

val is_empty : 'a t -> bool
val is_full : 'a t -> bool

(** True when exactly one element remains. *)
val almost_empty : 'a t -> bool

(** True when room for exactly one more element remains. *)
val almost_full : 'a t -> bool

val clear : 'a t -> unit

val to_list : 'a t -> 'a list

(** [filter_inplace q keep] drops elements failing [keep], preserving
    order (used by link moving to flush rejected requests). *)
val filter_inplace : 'a t -> ('a -> bool) -> unit
