(** Cooperative fibers over OCaml effects.

    A client processor's TASK and HANDLER (§3.1) each run as a fiber: plain
    OCaml code that suspends at SODA primitives and [idle ()] and is
    resumed by simulation events. One-shot continuations; a fiber whose
    resume never fires simply leaks (the simulated machine halted). *)

(** Raised inside a fiber to terminate it silently (client death, DIE). *)
exception Stop

(** [spawn ?on_exit fn] runs [fn ()] as a fiber. [on_exit] fires when the
    fiber returns or terminates via {!Stop} (not when it suspends).
    Other exceptions propagate to the scheduler after [on_exit]. *)
val spawn : ?on_exit:(unit -> unit) -> (unit -> unit) -> unit

(** [await f] suspends the current fiber; [f resume] must arrange for
    [resume v] to be called exactly once (later calls raise). The awaited
    value is returned from [await]. *)
val await : (('a -> unit) -> unit) -> 'a
