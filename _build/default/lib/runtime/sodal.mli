(** SODAL: the client-side programming interface (§4.1).

    A SODAL program has three parts — Initialization, Handler, Task
    (skeleton of §4.1) — mapped here onto callbacks of a {!spec}. The
    Handler is split into the paper's [case ENTRY] / [case COMPLETION]
    branches as [on_request] / [on_completion].

    All primitives take the client's {!env} and may only be called from
    that client's fibers. Blocking primitives ([b_put], [accept_*],
    [cancel], [discover], [idle]) suspend the calling fiber over simulated
    time. As in the paper (§4.1.1), blocking REQUESTs may not be issued
    from within the handler; [accept_*] may (and usually are). *)

module Types = Soda_base.Types
module Pattern = Soda_base.Pattern

type env

exception Sodal_error of string

(** MAXREQUESTS uncompleted requests outstanding (§3.3.2 rule 5). *)
exception Too_many_requests

(** {1 Program structure} *)

type request_info = {
  asker : Types.requester_signature;
  pattern : Pattern.t;  (** the ENTRY: which advertised pattern was used *)
  arg : int;
  put_size : int;
  get_size : int;
}

type comp_status =
  | Comp_ok
  | Comp_rejected  (** completed with a negative argument (§4.1.2) *)
  | Comp_crashed
  | Comp_unadvertised

type completion_info = {
  tid : Types.tid;  (** the COMPLETION case label *)
  status : comp_status;
  reply_arg : int;
  put_transferred : int;
  get_transferred : int;
}

type spec = {
  init : env -> parent:int -> unit;  (** Initialization section (BOOTING) *)
  on_request : env -> request_info -> unit;  (** handler, case ENTRY *)
  on_completion : env -> completion_info -> unit;  (** handler, case COMPLETION *)
  task : env -> unit;  (** Task; returning performs an implicit DIE *)
}

(** [serve env] idles forever: the Task section of a pure server. *)
val serve : env -> unit

(** A spec with empty sections and [serve] as the Task (a client whose Task
    section actually returns performs the paper's implicit DIE; pure
    servers must not). *)
val default_spec : spec

(** [attach kernel spec] installs a resident client on [kernel] and
    schedules its boot. Returns the environment (useful to tests). *)
val attach : ?parent:int -> Soda_core.Kernel.t -> spec -> env

(** [bootable kernel spec] registers [spec] as the program started when a
    parent boots this node over the network (§3.5.2). *)
val bootable : Soda_core.Kernel.t -> spec -> unit

(** [bootable_dynamic kernel f] like {!bootable}, but the program is
    derived from the received core image (used by the connector's loader,
    §4.3.1). *)
val bootable_dynamic : Soda_core.Kernel.t -> (parent:int -> image:bytes -> spec) -> unit

(** {1 Environment} *)

val my_mid : env -> int
val kernel : env -> Soda_core.Kernel.t
val now : env -> int
val in_handler : env -> bool

(** {1 Naming} *)

val advertise : env -> Pattern.t -> unit
val unadvertise : env -> Pattern.t -> unit
val getuniqueid : env -> Pattern.t

(** [discover env pattern] blocks until one advertiser is found; returns
    its full SERVER SIGNATURE (§4.1.3). Retries until an answer arrives. *)
val discover : env -> Pattern.t -> Types.server_signature

(** [discover_list env pattern ~max] returns every mid that answered one
    broadcast round (possibly none). *)
val discover_list : env -> Pattern.t -> max:int -> int list

(** {1 Non-blocking REQUEST variants (§4.1.1)} *)

val signal : env -> Types.server_signature -> arg:int -> Types.tid
val put : env -> Types.server_signature -> arg:int -> bytes -> Types.tid
val get : env -> Types.server_signature -> arg:int -> into:bytes -> Types.tid
val exchange : env -> Types.server_signature -> arg:int -> bytes -> into:bytes -> Types.tid

(** {1 Blocking variants} *)

val b_signal : env -> Types.server_signature -> arg:int -> completion_info
val b_put : env -> Types.server_signature -> arg:int -> bytes -> completion_info
val b_get : env -> Types.server_signature -> arg:int -> into:bytes -> completion_info
val b_exchange :
  env -> Types.server_signature -> arg:int -> bytes -> into:bytes -> completion_info

(** [await_first env tids] blocks the task until one of the named
    non-blocking requests completes. The losers' waiters are deregistered:
    their completions fall through to [on_completion] unless re-awaited,
    cancelled, or swallowed. Illegal in the handler. *)
val await_first : env -> Types.tid list -> completion_info

(** [await_completion env tid] blocks until that request completes. *)
val await_completion : env -> Types.tid -> completion_info

(** [swallow_completion env tid] consumes the eventual completion interrupt
    of [tid] silently instead of invoking [on_completion] (used after a
    failed CANCEL of a fire-and-forget request). *)
val swallow_completion : env -> Types.tid -> unit

(** [on_completion_of env tid k] registers a one-shot callback for that
    request's completion, bypassing [on_completion]. [k] runs in interrupt
    context: it must not block (record and return; idle waiters are woken
    afterwards). *)
val on_completion_of : env -> Types.tid -> (completion_info -> unit) -> unit

(** {1 ACCEPT variants (blocking, bounded time)} *)

val accept_signal : env -> Types.requester_signature -> arg:int -> Types.accept_status

(** Complete a PUT: requester data lands in [into]; returns bytes taken. *)
val accept_put :
  env -> Types.requester_signature -> arg:int -> into:bytes -> Types.accept_status * int

(** Complete a GET: send [data]. *)
val accept_get :
  env -> Types.requester_signature -> arg:int -> data:bytes -> Types.accept_status

val accept_exchange :
  env ->
  Types.requester_signature ->
  arg:int ->
  into:bytes ->
  data:bytes ->
  Types.accept_status * int

(** ACCEPT_CURRENT_* (§4.1.2): complete the request that invoked the
    current handler. Illegal outside the handler. *)

val accept_current_signal : env -> arg:int -> Types.accept_status
val accept_current_put : env -> arg:int -> into:bytes -> Types.accept_status * int
val accept_current_get : env -> arg:int -> data:bytes -> Types.accept_status
val accept_current_exchange :
  env -> arg:int -> into:bytes -> data:bytes -> Types.accept_status * int

(** REJECT (§4.1.2): accept the current request with argument -1 and no
    data. *)
val reject : env -> unit

val reject_request : env -> Types.requester_signature -> unit

(** {1 Other primitives} *)

(** CANCEL; true iff the request will never complete (§3.3.3). *)
val cancel : env -> Types.tid -> bool

val open_handler : env -> unit
val close_handler : env -> unit

(** [idle env] suspends the task until some handler activity occurs
    (the SODAL [idle()] of §4.1.1). *)
val idle : env -> unit

(** [compute env us] models [us] microseconds of client computation. *)
val compute : env -> int -> unit

(** DIE: terminate this client (§3.5.1). Does not return. *)
val die : env -> 'a

(** [self_signature env ~tid] casts <my mid, tid> (§4.1.3). *)
val self_signature : env -> tid:Types.tid -> Types.requester_signature

(** [server env ~mid ~pattern] casts <mid, pattern>. *)
val server : mid:int -> pattern:Pattern.t -> Types.server_signature

(** [server_broadcast ~pattern] casts <BROADCAST, pattern>. *)
val server_broadcast : pattern:Pattern.t -> Types.server_signature
