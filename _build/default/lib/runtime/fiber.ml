exception Stop

type _ Effect.t += Await : (('a -> unit) -> unit) -> 'a Effect.t

let await f = Effect.perform (Await f)

let spawn ?(on_exit = fun () -> ()) fn =
  let open Effect.Deep in
  match_with fn ()
    {
      retc = (fun () -> on_exit ());
      exnc =
        (fun e ->
          on_exit ();
          match e with Stop -> () | e -> raise e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Await f ->
            Some
              (fun (k : (a, unit) continuation) ->
                let resumed = ref false in
                f (fun v ->
                    if !resumed then failwith "Fiber: continuation resumed twice";
                    resumed := true;
                    continue k v))
          | _ -> None);
    }
