type 'a t = { capacity : int; items : 'a Queue.t }

exception Empty
exception Full

let create capacity =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity must be >= 1";
  { capacity; items = Queue.create () }

let capacity t = t.capacity
let length t = Queue.length t.items

let enqueue t x =
  if Queue.length t.items >= t.capacity then raise Full;
  Queue.push x t.items

let dequeue t = match Queue.pop t.items with x -> x | exception Queue.Empty -> raise Empty

let peek t = Queue.peek_opt t.items

let is_empty t = Queue.is_empty t.items
let is_full t = Queue.length t.items >= t.capacity
let almost_empty t = Queue.length t.items = 1
let almost_full t = Queue.length t.items = t.capacity - 1

let clear t = Queue.clear t.items

let to_list t = List.of_seq (Queue.to_seq t.items)

let filter_inplace t keep =
  let kept = Queue.create () in
  Queue.iter (fun x -> if keep x then Queue.push x kept) t.items;
  Queue.clear t.items;
  Queue.transfer kept t.items
