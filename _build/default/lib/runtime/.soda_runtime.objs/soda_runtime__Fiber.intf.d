lib/runtime/fiber.mli:
