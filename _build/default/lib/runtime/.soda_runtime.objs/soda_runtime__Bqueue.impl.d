lib/runtime/bqueue.ml: List Queue
