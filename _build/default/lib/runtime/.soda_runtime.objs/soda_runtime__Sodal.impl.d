lib/runtime/sodal.ml: Bytes Char Fiber Hashtbl List Soda_base Soda_core Soda_sim
