lib/runtime/bqueue.mli:
