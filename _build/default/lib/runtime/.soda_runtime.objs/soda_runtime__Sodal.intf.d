lib/runtime/sodal.mli: Soda_base Soda_core
