(** Process migration over the boot protocol (§6.2).

    "A program may be compiled on a machine attached to a disk containing
    the program text, then move to a high-speed processor to perform
    numerical tasks, and ultimately migrate to a processor attached to a
    printer to produce output."

    The migrating job carries its state as the core image it PUTs onto the
    next machine's LOAD pattern: discover a free machine of the right kind,
    GET its load pattern, ship state, SIGNAL it to life, and DIE — at which
    point the old machine's BOOT patterns re-advertise and it is free
    again. A stationary reporter collects the finished result. *)

type summary = {
  hops : (int * string) list;  (** (mid, stage) actually visited, in order *)
  result : string;  (** what the reporter received at the end *)
  machines_freed : bool;  (** intermediate machines became bootable again *)
}

val run : ?seed:int -> unit -> summary

val pp_summary : Format.formatter -> summary -> unit
