lib/examples/four_way_buffer.mli: Format
