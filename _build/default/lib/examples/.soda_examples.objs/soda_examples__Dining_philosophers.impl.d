lib/examples/dining_philosophers.ml: Array Bytes Char Format List Soda_base Soda_core Soda_facilities Soda_runtime Soda_sim String
