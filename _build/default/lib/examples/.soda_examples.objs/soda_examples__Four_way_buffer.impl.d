lib/examples/four_way_buffer.ml: Bytes Char Format Queue Soda_base Soda_core Soda_runtime
