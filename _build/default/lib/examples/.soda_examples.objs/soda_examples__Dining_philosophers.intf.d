lib/examples/dining_philosophers.mli: Format
