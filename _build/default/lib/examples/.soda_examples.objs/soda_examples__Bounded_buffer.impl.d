lib/examples/bounded_buffer.ml: Array Bytes Format Hashtbl List Option Printf Soda_base Soda_core Soda_runtime String
