lib/examples/file_server.ml: Bytes Char Format Hashtbl Option Printf Queue Soda_base Soda_core Soda_runtime String
