lib/examples/readers_writers.mli: Format
