lib/examples/readers_writers.ml: Format List Queue Soda_base Soda_core Soda_runtime Soda_sim
