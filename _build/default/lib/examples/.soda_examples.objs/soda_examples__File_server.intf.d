lib/examples/file_server.mli: Format Soda_base Soda_runtime
