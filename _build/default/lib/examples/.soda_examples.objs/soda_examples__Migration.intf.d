lib/examples/migration.mli: Format
