lib/examples/bounded_buffer.mli: Format
