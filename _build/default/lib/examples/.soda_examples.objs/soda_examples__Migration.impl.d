lib/examples/migration.ml: Bytes Char Format List Printf Soda_base Soda_core Soda_runtime String
