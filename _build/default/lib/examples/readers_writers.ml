module Types = Soda_base.Types
module Pattern = Soda_base.Pattern
module Network = Soda_core.Network
module Sodal = Soda_runtime.Sodal
module Rng = Soda_sim.Rng

let start_read = Pattern.well_known 0o401
let start_write = Pattern.well_known 0o402
let end_read = Pattern.well_known 0o403
let end_write = Pattern.well_known 0o404

type summary = {
  reads : int;
  writes : int;
  max_concurrent_readers : int;
  exclusion_violations : int;
  writer_starved : bool;
}

(* Shared instrumentation: the "database" whose invariants we check. *)
type db = {
  mutable active_readers : int;
  mutable active_writers : int;
  mutable max_readers : int;
  mutable violations : int;
  mutable reads : int;
  mutable writes : int;
  mutable reader_entered_while_writer_waited : bool;
}

(* The moderator (§4.4.4): everything happens in the handler. *)
let moderator_spec () =
  let read_queue = Queue.create () in
  let write_queue = Queue.create () in
  let readcount = ref 0 in
  let writecount = ref 0 in
  {
    Sodal.default_spec with
    init =
      (fun env ~parent:_ ->
        List.iter (Sodal.advertise env) [ start_read; start_write; end_read; end_write ]);
    on_request =
      (fun env info ->
        let pattern = info.Sodal.pattern in
        if Pattern.equal pattern start_read then begin
          (* Fairness: a queued writer blocks new readers. *)
          if Queue.is_empty write_queue && !writecount = 0 then begin
            incr readcount;
            ignore (Sodal.accept_current_signal env ~arg:0)
          end
          else Queue.push info.Sodal.asker read_queue
        end
        else if Pattern.equal pattern start_write then begin
          if !readcount = 0 && !writecount = 0 then begin
            incr writecount;
            ignore (Sodal.accept_current_signal env ~arg:0)
          end
          else Queue.push info.Sodal.asker write_queue
        end
        else if Pattern.equal pattern end_read then begin
          ignore (Sodal.accept_current_signal env ~arg:0);
          decr readcount;
          if !readcount = 0 && not (Queue.is_empty write_queue) then begin
            incr writecount;
            ignore (Sodal.accept_signal env (Queue.pop write_queue) ~arg:0)
          end
        end
        else if Pattern.equal pattern end_write then begin
          ignore (Sodal.accept_current_signal env ~arg:0);
          decr writecount;
          if not (Queue.is_empty read_queue) then begin
            (* admit every reader that accumulated during the write *)
            while not (Queue.is_empty read_queue) do
              incr readcount;
              ignore (Sodal.accept_signal env (Queue.pop read_queue) ~arg:0)
            done
          end
          else if not (Queue.is_empty write_queue) then begin
            incr writecount;
            ignore (Sodal.accept_signal env (Queue.pop write_queue) ~arg:0)
          end
        end);
  }

let reader_spec ~moderator ~db ~rng ~operations =
  {
    Sodal.default_spec with
    task =
      (fun env ->
        for _ = 1 to operations do
          Sodal.compute env (Rng.int rng 30_000);
          ignore (Sodal.b_signal env (Sodal.server ~mid:moderator ~pattern:start_read) ~arg:0);
          db.active_readers <- db.active_readers + 1;
          db.max_readers <- max db.max_readers db.active_readers;
          if db.active_writers > 0 then db.violations <- db.violations + 1;
          Sodal.compute env (5_000 + Rng.int rng 15_000);
          db.reads <- db.reads + 1;
          db.active_readers <- db.active_readers - 1;
          ignore (Sodal.b_signal env (Sodal.server ~mid:moderator ~pattern:end_read) ~arg:0)
        done);
  }

let writer_spec ~moderator ~db ~rng ~operations =
  {
    Sodal.default_spec with
    task =
      (fun env ->
        for _ = 1 to operations do
          Sodal.compute env (Rng.int rng 60_000);
          ignore (Sodal.b_signal env (Sodal.server ~mid:moderator ~pattern:start_write) ~arg:0);
          db.active_writers <- db.active_writers + 1;
          if db.active_readers > 0 || db.active_writers > 1 then
            db.violations <- db.violations + 1;
          Sodal.compute env (8_000 + Rng.int rng 12_000);
          db.writes <- db.writes + 1;
          db.active_writers <- db.active_writers - 1;
          ignore (Sodal.b_signal env (Sodal.server ~mid:moderator ~pattern:end_write) ~arg:0)
        done);
  }

let run ?(seed = 41) ?(readers = 4) ?(writers = 2) ?(operations = 12) () =
  let net = Network.create ~seed () in
  let moderator_kernel = Network.add_node net ~mid:0 in
  ignore (Sodal.attach moderator_kernel (moderator_spec ()));
  let db =
    {
      active_readers = 0;
      active_writers = 0;
      max_readers = 0;
      violations = 0;
      reads = 0;
      writes = 0;
      reader_entered_while_writer_waited = false;
    }
  in
  let rng = Rng.create ~seed in
  for i = 1 to readers do
    let kernel = Network.add_node net ~mid:i in
    ignore
      (Sodal.attach kernel (reader_spec ~moderator:0 ~db ~rng:(Rng.split rng) ~operations))
  done;
  for i = 1 to writers do
    let kernel = Network.add_node net ~mid:(readers + i) in
    ignore
      (Sodal.attach kernel (writer_spec ~moderator:0 ~db ~rng:(Rng.split rng) ~operations))
  done;
  ignore (Network.run ~until:600_000_000 net);
  {
    reads = db.reads;
    writes = db.writes;
    max_concurrent_readers = db.max_readers;
    exclusion_violations = db.violations;
    writer_starved = db.reader_entered_while_writer_waited;
  }

let pp_summary ppf (s : summary) =
  Format.fprintf ppf
    "%d reads (max %d concurrent), %d writes, %d exclusion violations, writer starvation: %b"
    s.reads s.max_concurrent_readers s.writes s.exclusion_violations s.writer_starved
