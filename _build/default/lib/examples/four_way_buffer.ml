module Types = Soda_base.Types
module Pattern = Soda_base.Pattern
module Network = Soda_core.Network
module Sodal = Soda_runtime.Sodal
module Bqueue = Soda_runtime.Bqueue

let buffer_data = Pattern.well_known 0o200
let restart = Pattern.well_known 0o201

type summary = {
  transferred_a_to_b : int;
  transferred_b_to_a : int;
  flow_stops : int;
  lost : int;
}

(* A simulated character device: produces [to_produce] characters at
   [produce_interval_us], consumes written characters at
   [consume_interval_us], honours CTRL-S/CTRL-Q. *)
type device = {
  mutable to_produce : int;
  mutable produced_seq : int;
  mutable stopped : bool;  (* CTRL-S received *)
  mutable last_produce : int;
  mutable last_consume : int;
  produce_interval_us : int;
  consume_interval_us : int;
  outgoing : char Queue.t;  (* produced, waiting for the client to read *)
  mutable consumed : int;  (* characters written into the device *)
}

let make_device ~to_produce ~produce_interval_us ~consume_interval_us =
  {
    to_produce;
    produced_seq = 0;
    stopped = false;
    last_produce = 0;
    last_consume = 0;
    produce_interval_us;
    consume_interval_us;
    outgoing = Queue.create ();
    consumed = 0;
  }

(* Advance the device to the current time: it produces on its own clock
   unless stopped. *)
let device_step device ~now =
  if (not device.stopped) && device.to_produce > 0 then begin
    while device.last_produce + device.produce_interval_us <= now && device.to_produce > 0 do
      device.last_produce <- device.last_produce + device.produce_interval_us;
      device.produced_seq <- device.produced_seq + 1;
      device.to_produce <- device.to_produce - 1;
      Queue.push (Char.chr (device.produced_seq land 0x7F)) device.outgoing
    done
  end
  else device.last_produce <- max device.last_produce (now - device.produce_interval_us)

let device_input_ready device = not (Queue.is_empty device.outgoing)

let device_output_ready device ~now = device.last_consume + device.consume_interval_us <= now

type state = Continue | Full

let status_byte = function Continue -> '\000' | Full -> '\001'
let status_of_byte = function '\001' -> Full | _ -> Continue

let client_spec ~other ~device ~queue_len ~counters =
  let transferred, flow_stops, dropped = counters in
  let q = Bqueue.create queue_len in
  let partner_buf_full = ref false in
  let partner_buf_empty = ref false in
  let remote_client_stopped = ref false in
  {
    Sodal.default_spec with
    init =
      (fun env ~parent:_ ->
        Sodal.advertise env buffer_data;
        Sodal.advertise env restart);
    on_request =
      (fun env info ->
        if Pattern.equal info.Sodal.pattern buffer_data then begin
          (* Buffer data from the other client; the EXCHANGE reply carries
             our buffer state so the producer can stop instantly. *)
          let into = Bytes.create 1 in
          let return_status =
            if Bqueue.almost_full q || Bqueue.is_full q then begin
              remote_client_stopped := true;
              Full
            end
            else Continue
          in
          let reply = Bytes.make 1 (status_byte return_status) in
          let status, got = Sodal.accept_current_exchange env ~arg:0 ~into ~data:reply in
          match status with
          | Types.Accept_success when got = 1 ->
            if Bqueue.is_full q then incr dropped
            else Bqueue.enqueue q (Bytes.get into 0)
          | Types.Accept_success | Types.Accept_cancelled | Types.Accept_crashed -> ()
        end
        else begin
          (* RESTART: ok to produce again. *)
          ignore (Sodal.accept_current_signal env ~arg:0);
          partner_buf_empty := true
        end);
    task =
      (fun env ->
        let remote_buffer = Sodal.server ~mid:other ~pattern:buffer_data in
        let remote_restart = Sodal.server ~mid:other ~pattern:restart in
        let idle_rounds = ref 0 in
        while !idle_rounds < 200 do
          let did_something = ref false in
          device_step device ~now:(Sodal.now env);
          (* READ loop: move device output to the remote client. *)
          if (not !partner_buf_full) && device_input_ready device then begin
            did_something := true;
            let c = Queue.pop device.outgoing in
            let into = Bytes.create 1 in
            let completion =
              Sodal.b_exchange env remote_buffer ~arg:0 (Bytes.make 1 c) ~into
            in
            if completion.Sodal.status = Sodal.Comp_ok then begin
              incr transferred;
              if completion.Sodal.get_transferred = 1 && status_of_byte (Bytes.get into 0) = Full
              then begin
                incr flow_stops;
                partner_buf_full := true
              end
            end
          end;
          (* WRITE loop: feed buffered characters to the device. *)
          device_step device ~now:(Sodal.now env);
          if device_output_ready device ~now:(Sodal.now env) then begin
            if !partner_buf_full && not device.stopped then begin
              (* CTRL-S: stop our device from producing while the partner
                 drains; sending stays blocked until the RESTART arrives. *)
              device.stopped <- true;
              did_something := true
            end
            else if !partner_buf_empty then begin
              partner_buf_empty := false;
              partner_buf_full := false;
              device.stopped <- false;
              did_something := true
            end
            else if not (Bqueue.is_empty q) then begin
              did_something := true;
              let c = Bqueue.dequeue q in
              ignore c;
              device.last_consume <- Sodal.now env;
              device.consumed <- device.consumed + 1;
              if Bqueue.is_empty q && !remote_client_stopped then begin
                remote_client_stopped := false;
                ignore (Sodal.b_signal env remote_restart ~arg:0)
              end
            end
          end;
          if !did_something then idle_rounds := 0
          else begin
            incr idle_rounds;
            Sodal.compute env 2_000
          end
        done);
  }

let run ?(seed = 23) ?(chars_each_way = 60) ?(duration_s = 600.0) () =
  let net = Network.create ~seed () in
  let k0 = Network.add_node net ~mid:0 in
  let k1 = Network.add_node net ~mid:1 in
  (* Device A is fast, device B slow: flow control must engage. *)
  let dev_a =
    make_device ~to_produce:chars_each_way ~produce_interval_us:3_000
      ~consume_interval_us:25_000
  in
  let dev_b =
    make_device ~to_produce:chars_each_way ~produce_interval_us:20_000
      ~consume_interval_us:4_000
  in
  let a_to_b = ref 0 and b_to_a = ref 0 and stops = ref 0 and dropped = ref 0 in
  ignore (Sodal.attach k0 (client_spec ~other:1 ~device:dev_a ~queue_len:4 ~counters:(a_to_b, stops, dropped)));
  ignore (Sodal.attach k1 (client_spec ~other:0 ~device:dev_b ~queue_len:4 ~counters:(b_to_a, stops, dropped)));
  ignore (Network.run ~until:(int_of_float (duration_s *. 1e6)) net);
  {
    transferred_a_to_b = !a_to_b;
    transferred_b_to_a = !b_to_a;
    flow_stops = !stops;
    lost = !dropped;
  }

let pp_summary ppf s =
  Format.fprintf ppf "A->B %d chars, B->A %d chars, %d flow-control stops, %d lost"
    s.transferred_a_to_b s.transferred_b_to_a s.flow_stops s.lost
