module Types = Soda_base.Types
module Pattern = Soda_base.Pattern
module Network = Soda_core.Network
module Sodal = Soda_runtime.Sodal
module Bqueue = Soda_runtime.Bqueue

let consumer_pattern = Pattern.well_known 0o100

type summary = {
  produced : int;
  consumed : int;
  in_order : bool;
  backpressure_closes : int;
}

let item_bytes = 32

(* Producer (§4.4.1): double-buffered non-blocking PUTs — fill one buffer
   while the other is in flight. *)
let producer_spec ~consumer_mid ~id ~items ~produced =
  let ready = ref true in
  {
    Sodal.default_spec with
    on_completion = (fun _ _ -> ready := true);
    task =
      (fun env ->
        let consumer = Sodal.server ~mid:consumer_mid ~pattern:consumer_pattern in
        let buffers = [| Bytes.create item_bytes; Bytes.create item_bytes |] in
        for seq = 1 to items do
          let current = buffers.(seq land 1) in
          Bytes.fill current 0 item_bytes ' ';
          let text = Printf.sprintf "p%d:%d" id seq in
          Bytes.blit_string text 0 current 0 (String.length text);
          while not !ready do
            Sodal.idle env
          done;
          ready := false;
          ignore (Sodal.put env consumer ~arg:id current);
          incr produced
        done;
        (* Wait for the final PUT to be accepted before dying. *)
        while not !ready do
          Sodal.idle env
        done);
  }

(* Consumer: signature queue + data buffering from a free pool, with CLOSE
   backpressure when the signature queue fills. *)
let consumer_spec ~queue_len ~service_us ~consumed ~closes ~record =
  let pending = Bqueue.create queue_len in
  (* [produced_data] holds (buffer, length): buffers stay out of the free
     pool until processed, which is what bounds the accepts (§4.4.1). *)
  let produced_data = Bqueue.create queue_len in
  let free_pool = Bqueue.create queue_len in
  {
    Sodal.default_spec with
    init =
      (fun env ~parent:_ ->
        for _ = 1 to queue_len do
          Bqueue.enqueue free_pool (Bytes.create item_bytes)
        done;
        Sodal.advertise env consumer_pattern);
    on_request =
      (fun env info ->
        Bqueue.enqueue pending info.Sodal.asker;
        if Bqueue.is_full pending then begin
          incr closes;
          Sodal.close_handler env
        end);
    task =
      (fun env ->
        while true do
          (* Drain one pending signature into a free buffer, if any. *)
          if (not (Bqueue.is_empty pending)) && not (Bqueue.is_empty free_pool) then begin
            let asker = Bqueue.dequeue pending in
            Sodal.open_handler env;
            let buffer = Bqueue.dequeue free_pool in
            let status, got = Sodal.accept_put env asker ~arg:0 ~into:buffer in
            match status with
            | Types.Accept_success -> Bqueue.enqueue produced_data (buffer, got)
            | Types.Accept_cancelled | Types.Accept_crashed ->
              Bqueue.enqueue free_pool buffer
          end
          else if not (Bqueue.is_empty produced_data) then begin
            let buffer, got = Bqueue.dequeue produced_data in
            (* process_data *)
            Sodal.compute env service_us;
            record (Bytes.sub_string buffer 0 got);
            incr consumed;
            Bqueue.enqueue free_pool buffer
          end
          else Sodal.idle env
        done);
  }

let run ?(seed = 11) ?(producers = 4) ?(items_per_producer = 20)
    ?(consumer_service_us = 12_000) () =
  let net = Network.create ~seed () in
  let consumer_kernel = Network.add_node net ~mid:0 in
  let produced = ref 0 and consumed = ref 0 and closes = ref 0 in
  let received : string list ref = ref [] in
  ignore
    (Sodal.attach consumer_kernel
       (consumer_spec ~queue_len:3 ~service_us:consumer_service_us ~consumed ~closes
          ~record:(fun s -> received := s :: !received)));
  for id = 1 to producers do
    let kernel = Network.add_node net ~mid:id in
    ignore
      (Sodal.attach kernel
         (producer_spec ~consumer_mid:0 ~id ~items:items_per_producer ~produced))
  done;
  ignore (Network.run ~until:600_000_000 net);
  (* Per-producer sequence numbers must arrive in order. *)
  let last = Hashtbl.create 4 in
  let in_order = ref true in
  List.iter
    (fun item ->
      match String.split_on_char ':' (String.trim item) with
      | [ producer; seq ] ->
        let seq = int_of_string seq in
        let prev = Option.value ~default:0 (Hashtbl.find_opt last producer) in
        if seq <> prev + 1 then in_order := false;
        Hashtbl.replace last producer seq
      | _ -> in_order := false)
    (List.rev !received);
  { produced = !produced; consumed = !consumed; in_order = !in_order;
    backpressure_closes = !closes }

let pp_summary ppf s =
  Format.fprintf ppf
    "produced %d items, consumed %d, per-producer FIFO %s, %d backpressure CLOSEs"
    s.produced s.consumed
    (if s.in_order then "held" else "VIOLATED")
    s.backpressure_closes
