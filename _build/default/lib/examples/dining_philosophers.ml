module Types = Soda_base.Types
module Pattern = Soda_base.Pattern
module Network = Soda_core.Network
module Sodal = Soda_runtime.Sodal
module Timeserver = Soda_facilities.Timeserver
module Rng = Soda_sim.Rng
module Engine = Soda_sim.Engine

(* Well-known patterns of the protocol (§4.4.3). *)
let getfork = Pattern.well_known 0o301
let putfork = Pattern.well_known 0o302
let return_fork = Pattern.well_known 0o303
let check = Pattern.well_known 0o304
let give_back = Pattern.well_known 0o305

type summary = {
  meals : int array;
  deadlocks_broken : int;
  safety_violations : int;
  false_deadlocks : int;
}

type fork_state = Mine | His | Idle

(* Global instrumentation (the "god's eye" view used only for checking). *)
type world = {
  eating : bool array;
  mutable safety_violations : int;
  mutable total_meals : int;
  needful : bool array;  (** truthful needful state, for false-positive checks *)
}

let encode_tid tid =
  let b = Bytes.create 8 in
  for i = 0 to 7 do
    Bytes.set b i (Char.chr ((tid lsr (8 * (7 - i))) land 0xFF))
  done;
  b

let decode_tid b =
  let v = ref 0 in
  for i = 0 to min 7 (Bytes.length b - 1) do
    v := (!v lsl 8) lor Char.code (Bytes.get b i)
  done;
  !v

(* Philosopher [self]; its LEFT neighbour (owner of its left fork) is
   [(self + 1) mod n]. *)
let philosopher_spec ~self ~n ~world ~meals ~rng ~duration_us =
  let left_mid = (self + 1) mod n in
  let fork_left = ref Idle in
  let fork_own = ref Idle in
  (* TID of our outstanding/latest request for the left fork; the detector
     compares it across probes (§4.4.3 step 4). *)
  let my_request = ref 0 in
  let his_request : Types.requester_signature option ref = ref None in
  let update_needful () = world.needful.(self) <- !fork_left = Mine && !fork_own = His in
  {
    Sodal.init = (fun env ~parent:_ ->
        Sodal.advertise env getfork;
        Sodal.advertise env putfork;
        Sodal.advertise env return_fork;
        Sodal.advertise env check;
        Sodal.advertise env give_back);
    on_completion =
      (fun _env info ->
        if info.Sodal.tid = !my_request && info.Sodal.status = Sodal.Comp_ok then begin
          fork_left := Mine;
          update_needful ()
        end);
    on_request =
      (fun env info ->
        let pattern = info.Sodal.pattern in
        if Pattern.equal pattern getfork then begin
          if !fork_own = Mine then his_request := Some info.Sodal.asker
          else begin
            fork_own := His;
            update_needful ();
            ignore (Sodal.accept_current_signal env ~arg:0)
          end
        end
        else if Pattern.equal pattern putfork then begin
          ignore (Sodal.accept_current_signal env ~arg:0);
          fork_own := Idle;
          update_needful ()
        end
        else if Pattern.equal pattern check then begin
          if !fork_left = Mine && !fork_own = His then
            ignore (Sodal.accept_current_get env ~arg:0 ~data:(encode_tid !my_request))
          else Sodal.reject env
        end
        else if Pattern.equal pattern give_back then begin
          ignore (Sodal.accept_current_signal env ~arg:0);
          (* Release the left fork to break the deadlock; ask for it back
             with RETURN_FORK so we regain it before our neighbour eats
             twice (the fairness property of §4.4.3). *)
          my_request := Sodal.signal env (Sodal.server ~mid:left_mid ~pattern:return_fork) ~arg:0;
          fork_left := His;
          update_needful ()
        end
        else if Pattern.equal pattern return_fork then begin
          (* Our fork comes home; remember the giver wants it again. *)
          fork_own := Mine;
          update_needful ();
          his_request := Some info.Sodal.asker
        end);
    task =
      (fun env ->
        let deadline = duration_us in
        let think () =
          (* Zero initial thinking forces the canonical deadlock. *)
          if meals.(self) > 0 then Sodal.compute env (10_000 + Rng.int rng 40_000)
        in
        let grab_own_fork () =
          Sodal.close_handler env;
          let ok = !fork_own <> His in
          if ok then fork_own := Mine;
          Sodal.open_handler env;
          if ok then update_needful ();
          ok
        in
        while Sodal.now env < deadline do
          think ();
          my_request := Sodal.signal env (Sodal.server ~mid:left_mid ~pattern:getfork) ~arg:0;
          while !fork_left <> Mine && Sodal.now env < deadline do
            Sodal.idle env
          done;
          while ((not (grab_own_fork ())) || !fork_left <> Mine) && Sodal.now env < deadline do
            Sodal.idle env
          done;
          if Sodal.now env < deadline then begin
            (* eat *)
            world.eating.(self) <- true;
            if world.eating.((self + 1) mod n) || world.eating.((self + n - 1) mod n) then
              world.safety_violations <- world.safety_violations + 1;
            Sodal.compute env (10_000 + Rng.int rng 20_000);
            world.eating.(self) <- false;
            meals.(self) <- meals.(self) + 1;
            world.total_meals <- world.total_meals + 1;
            (* put back the left fork *)
            ignore (Sodal.b_signal env (Sodal.server ~mid:left_mid ~pattern:putfork) ~arg:0);
            Sodal.close_handler env;
            fork_left := Idle;
            if !fork_own = Mine then fork_own := Idle;
            update_needful ();
            let pending = !his_request in
            his_request := None;
            Sodal.open_handler env;
            match pending with
            | Some asker ->
              Sodal.close_handler env;
              fork_own := His;
              update_needful ();
              Sodal.open_handler env;
              ignore (Sodal.accept_signal env asker ~arg:0)
            | None -> ()
          end
        done;
        Sodal.serve env);
  }

let detector_spec ~n ~timeserver_mid ~interval_us ~world ~broken ~false_positives =
  let times_up = ref false in
  let alarm_tid = ref 0 in
  {
    Sodal.default_spec with
    init =
      (fun env ~parent:_ ->
        let ts = Sodal.server ~mid:timeserver_mid ~pattern:Timeserver.alarm_pattern in
        alarm_tid := Sodal.signal env ts ~arg:interval_us);
    on_completion =
      (fun env info ->
        if info.Sodal.tid = !alarm_tid then begin
          times_up := true;
          let ts = Sodal.server ~mid:timeserver_mid ~pattern:Timeserver.alarm_pattern in
          alarm_tid := Sodal.signal env ts ~arg:interval_us
        end);
    task =
      (fun env ->
        let possible_victims = ref (List.init n (fun i -> i)) in
        let rng = Rng.create ~seed:(97 * n) in
        let pick_victim () =
          (match !possible_victims with
           | [] -> possible_victims := List.init n (fun i -> i)
           | _ -> ());
          let victims = !possible_victims in
          let v = List.nth victims (Rng.int rng (List.length victims)) in
          possible_victims := List.filter (fun x -> x <> v) victims;
          v
        in
        let next_victim = ref (pick_victim ()) in
        let check_philosopher mid =
          let into = Bytes.create 8 in
          let c = Sodal.b_get env (Sodal.server ~mid ~pattern:check) ~arg:0 ~into in
          match c.Sodal.status with
          | Sodal.Comp_ok -> Some (decode_tid into)
          | Sodal.Comp_rejected | Sodal.Comp_crashed | Sodal.Comp_unadvertised -> None
        in
        while true do
          if !times_up then begin
            times_up := false;
            let v = !next_victim in
            (match check_philosopher v with
             | None -> ()
             | Some first_tid ->
               (* Walk the ring of successors (each holds the next one's
                  wanted fork). *)
               (* Philosopher i's own fork is held by (i-1), so the chain
                  of "holds what the previous one wants" walks downwards. *)
               let rec walk current =
                 let next = (current + n - 1) mod n in
                 if next = v then true
                 else
                   match check_philosopher next with
                   | Some _ -> walk next
                   | None -> false
               in
               if walk v then begin
                 match check_philosopher v with
                 | Some second_tid when second_tid = first_tid ->
                   (* Deadlock proven (§4.4.3): the victim's state cannot
                      have changed between the two probes. *)
                   if not (Array.for_all (fun x -> x) world.needful) then
                     incr false_positives;
                   incr broken;
                   ignore (Sodal.b_signal env (Sodal.server ~mid:v ~pattern:give_back) ~arg:0);
                   next_victim := pick_victim ()
                 | Some _ | None -> ()
               end)
          end
          else Sodal.idle env
        done);
  }

let run ?(seed = 31) ?(duration_s = 120.0) ?(philosophers = 5) () =
  let n = philosophers in
  let net = Network.create ~seed () in
  let duration_us = int_of_float (duration_s *. 1e6) in
  let world =
    {
      eating = Array.make n false;
      safety_violations = 0;
      total_meals = 0;
      needful = Array.make n false;
    }
  in
  let meals = Array.make n 0 in
  let rng = Rng.create ~seed:(seed * 7) in
  for i = 0 to n - 1 do
    let kernel = Network.add_node net ~mid:i in
    ignore
      (Sodal.attach kernel
         (philosopher_spec ~self:i ~n ~world ~meals ~rng:(Rng.split rng) ~duration_us))
  done;
  let ts_kernel = Network.add_node net ~mid:n in
  ignore (Sodal.attach ts_kernel (Timeserver.spec ()));
  let det_kernel = Network.add_node net ~mid:(n + 1) in
  let broken = ref 0 and false_positives = ref 0 in
  ignore
    (Sodal.attach det_kernel
       (detector_spec ~n ~timeserver_mid:n ~interval_us:400_000 ~world ~broken
          ~false_positives));
  ignore (Network.run ~until:duration_us net);
  {
    meals;
    deadlocks_broken = !broken;
    safety_violations = world.safety_violations;
    false_deadlocks = !false_positives;
  }

let pp_summary ppf s =
  Format.fprintf ppf "meals per philosopher: [%s], %d deadlocks broken, %d safety violations, %d false deadlocks"
    (String.concat "; " (Array.to_list (Array.map string_of_int s.meals)))
    s.deadlocks_broken s.safety_violations s.false_deadlocks
