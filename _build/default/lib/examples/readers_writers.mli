(** Concurrent readers and writers (§4.4.4).

    A moderator client arbitrates access to a database with the classic
    fairness policy: readers share, writers exclude everyone, a pending
    write blocks new reads, and readers accumulated during a write are all
    admitted before the next write. All four operations (START_READ,
    START_WRITE, END_READ, END_WRITE) are SIGNALs handled entirely in the
    moderator's handler — the task never runs, showing SODA's flexible
    accept scheduling (§6.7). *)

type summary = {
  reads : int;
  writes : int;
  max_concurrent_readers : int;
  exclusion_violations : int;  (** reader+writer or writer+writer overlap *)
  writer_starved : bool;  (** a writer waited while new readers kept entering *)
}

val run :
  ?seed:int -> ?readers:int -> ?writers:int -> ?operations:int -> unit -> summary

val pp_summary : Format.formatter -> summary -> unit
