module Sodal = Soda_runtime.Sodal
module Types = Soda_base.Types
module Pattern = Soda_base.Pattern
module Network = Soda_core.Network

let fileserver_pattern = Pattern.well_known 0o500
let open_pattern = Pattern.well_known 0o501

(* Operation kinds, carried in the REQUEST argument. *)
let op_read = 1
let op_write = 2
let op_seek = 3
let op_close = 4

exception File_error of string

(* ---- server ---------------------------------------------------------------- *)

type open_file_state = {
  name : string;
  mutable content : bytes;
  mutable pos : int;
  fd : Pattern.t;
}

type operation = {
  client : Types.requester_signature;
  kind : int;
  file : open_file_state;
  put_size : int;
  get_size : int;
}

let encode_pattern p =
  let b = Bytes.create 6 in
  let v = Pattern.to_int p in
  for i = 0 to 5 do
    Bytes.set b i (Char.chr ((v lsr (8 * (5 - i))) land 0xFF))
  done;
  b

let decode_pattern b =
  let v = ref 0 in
  for i = 0 to 5 do
    v := (!v lsl 8) lor Char.code (Bytes.get b i)
  done;
  Pattern.of_int !v

let server_spec () =
  (* the volume: file name -> stored bytes (survives close) *)
  let volume : (string, bytes) Hashtbl.t = Hashtbl.create 16 in
  let by_fd : (int, open_file_state) Hashtbl.t = Hashtbl.create 16 in
  let op_queue : operation Queue.t = Queue.create () in
  let perform env op =
    let file = op.file in
    if op.kind = op_read then begin
      let available = max 0 (Bytes.length file.content - file.pos) in
      let len = min available op.get_size in
      let data = Bytes.sub file.content file.pos len in
      let status = Sodal.accept_get env op.client ~arg:0 ~data in
      if status = Types.Accept_success then file.pos <- file.pos + len
    end
    else if op.kind = op_write then begin
      let into = Bytes.create op.put_size in
      let status, got = Sodal.accept_put env op.client ~arg:0 ~into in
      if status = Types.Accept_success then begin
        let needed = file.pos + got in
        if needed > Bytes.length file.content then begin
          let grown = Bytes.make needed '\000' in
          Bytes.blit file.content 0 grown 0 (Bytes.length file.content);
          file.content <- grown
        end;
        Bytes.blit into 0 file.content file.pos got;
        file.pos <- file.pos + got;
        Hashtbl.replace volume file.name file.content
      end
    end
    else if op.kind = op_seek then begin
      let into = Bytes.create 4 in
      let status, got = Sodal.accept_put env op.client ~arg:0 ~into in
      if status = Types.Accept_success && got = 4 then begin
        let v = ref 0 in
        for i = 0 to 3 do
          v := (!v lsl 8) lor Char.code (Bytes.get into i)
        done;
        if !v <= Bytes.length file.content then file.pos <- !v
      end
    end
    else if op.kind = op_close then begin
      ignore (Sodal.accept_signal env op.client ~arg:0);
      Hashtbl.replace volume file.name file.content;
      Hashtbl.remove by_fd (Pattern.to_int file.fd);
      Sodal.unadvertise env file.fd
    end
    else Sodal.reject_request env op.client
  in
  {
    Sodal.default_spec with
    init =
      (fun env ~parent:_ ->
        Sodal.advertise env fileserver_pattern;
        Sodal.advertise env open_pattern);
    on_request =
      (fun env info ->
        if Pattern.equal info.Sodal.pattern open_pattern then begin
          (* OPEN: exchange the file name for a fresh fd pattern. *)
          let fd = Sodal.getuniqueid env in
          Sodal.advertise env fd;
          let name_buf = Bytes.create info.Sodal.put_size in
          let status, got =
            Sodal.accept_current_exchange env ~arg:0 ~into:name_buf ~data:(encode_pattern fd)
          in
          match status with
          | Types.Accept_success ->
            let name = Bytes.sub_string name_buf 0 got in
            let content = Option.value ~default:Bytes.empty (Hashtbl.find_opt volume name) in
            Hashtbl.replace by_fd (Pattern.to_int fd) { name; content; pos = 0; fd }
          | Types.Accept_cancelled | Types.Accept_crashed -> Sodal.unadvertise env fd
        end
        else begin
          match Hashtbl.find_opt by_fd (Pattern.to_int info.Sodal.pattern) with
          | Some file ->
            Queue.push
              {
                client = info.Sodal.asker;
                kind = info.Sodal.arg;
                file;
                put_size = info.Sodal.put_size;
                get_size = info.Sodal.get_size;
              }
              op_queue
          | None -> Sodal.reject env
        end);
    task =
      (fun env ->
        while true do
          if Queue.is_empty op_queue then Sodal.idle env
          else perform env (Queue.pop op_queue)
        done);
  }

(* ---- client protocol ---------------------------------------------------------- *)

type file = { server_mid : int; fd_pattern : Pattern.t }

let open_file env ~mid name =
  let into = Bytes.create 6 in
  let c =
    Sodal.b_exchange env (Sodal.server ~mid ~pattern:open_pattern) ~arg:0
      (Bytes.of_string name) ~into
  in
  if c.Sodal.status <> Sodal.Comp_ok || c.Sodal.get_transferred <> 6 then
    raise (File_error ("open failed for " ^ name));
  { server_mid = mid; fd_pattern = decode_pattern into }

let fd_server file = Sodal.server ~mid:file.server_mid ~pattern:file.fd_pattern

let check what c =
  match c.Sodal.status with
  | Sodal.Comp_ok -> c
  | Sodal.Comp_rejected -> raise (File_error (what ^ ": rejected"))
  | Sodal.Comp_crashed -> raise (File_error (what ^ ": server crashed"))
  | Sodal.Comp_unadvertised -> raise (File_error (what ^ ": bad file descriptor"))

let write env file data = ignore (check "write" (Sodal.b_put env (fd_server file) ~arg:op_write data))

let read env file ~len =
  let into = Bytes.create len in
  let c = check "read" (Sodal.b_get env (fd_server file) ~arg:op_read ~into) in
  Bytes.sub into 0 c.Sodal.get_transferred

let seek env file ~pos =
  let b = Bytes.create 4 in
  for i = 0 to 3 do
    Bytes.set b i (Char.chr ((pos lsr (8 * (3 - i))) land 0xFF))
  done;
  ignore (check "seek" (Sodal.b_put env (fd_server file) ~arg:op_seek b))

let close env file = ignore (check "close" (Sodal.b_signal env (fd_server file) ~arg:op_close))

(* ---- demo harness ---------------------------------------------------------------- *)

type summary = {
  files_written : int;
  bytes_written : int;
  bytes_read_back : int;
  round_trips_ok : bool;
  stale_fd_rejected : bool;
}

let run ?(seed = 51) ?(clients = 3) () =
  let net = Network.create ~seed () in
  let server_kernel = Network.add_node net ~mid:0 in
  ignore (Sodal.attach server_kernel (server_spec ()));
  let written = ref 0 and read_back = ref 0 and files = ref 0 in
  let ok = ref true and stale_rejected = ref false in
  for i = 1 to clients do
    let kernel = Network.add_node net ~mid:i in
    ignore
      (Sodal.attach kernel
         {
           Sodal.default_spec with
           task =
             (fun env ->
               (* locate the file server *)
               let fs = Sodal.discover env fileserver_pattern in
               let mid = match fs.Types.sv_mid with Types.Mid m -> m | _ -> assert false in
               let name = Printf.sprintf "file-%d" i in
               let file = open_file env ~mid name in
               incr files;
               let contents = Printf.sprintf "the quick brown fox %d jumped" i in
               write env file (Bytes.of_string contents);
               written := !written + String.length contents;
               (* rewind and read back *)
               seek env file ~pos:0;
               let data = read env file ~len:64 in
               read_back := !read_back + Bytes.length data;
               if Bytes.to_string data <> contents then ok := false;
               (* partial read via seek *)
               seek env file ~pos:4;
               let part = read env file ~len:5 in
               if Bytes.to_string part <> "quick" then ok := false;
               close env file;
               (* a closed fd must be dead *)
               (try ignore (read env file ~len:4)
                with File_error _ -> stale_rejected := true));
         })
  done;
  ignore (Network.run ~until:600_000_000 net);
  {
    files_written = !files;
    bytes_written = !written;
    bytes_read_back = !read_back;
    round_trips_ok = !ok;
    stale_fd_rejected = !stale_rejected;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "%d files, %d bytes written, %d read back, round-trips %s, stale fd rejected: %b"
    s.files_written s.bytes_written s.bytes_read_back
    (if s.round_trips_ok then "ok" else "CORRUPT")
    s.stale_fd_rejected
