(** Dining philosophers with deadlock detection (§4.4.3).

    The paper's novel solution: five philosophers, each owning one fork,
    grab left fork then own fork — which deadlocks by construction — plus a
    deadlock-detector process woken periodically by the timeserver. The
    detector walks the ring asking each philosopher whether it is NEEDFUL
    (holds its left fork, wants its own back); if it returns to the first
    philosopher and the TID of that philosopher's fork request is
    unchanged, deadlock is proven (the induction of §4.4.3) and the victim
    is told to GIVE_BACK its fork. A fairness list ensures no philosopher
    is victimised twice before all others have been. *)

type summary = {
  meals : int array;  (** meals per philosopher *)
  deadlocks_broken : int;
  safety_violations : int;  (** adjacent philosophers eating simultaneously *)
  false_deadlocks : int;  (** GIVE_BACK sent when no deadlock existed *)
}

val run : ?seed:int -> ?duration_s:float -> ?philosophers:int -> unit -> summary

val pp_summary : Format.formatter -> summary -> unit
