module Types = Soda_base.Types
module Pattern = Soda_base.Pattern
module Network = Soda_core.Network
module Kernel = Soda_core.Kernel
module Sodal = Soda_runtime.Sodal

let reporter_pattern = Pattern.well_known 0o750

(* Machine kinds of the heterogeneous pipeline. *)
let kind_disk = 1  (* has the program text *)
let kind_fpu = 2  (* fast arithmetic *)
let kind_printer = 3  (* attached printer *)

type summary = {
  hops : (int * string) list;
  result : string;
  machines_freed : bool;
}

let stage_of_kind kind =
  if kind = kind_disk then "compile"
  else if kind = kind_fpu then "compute"
  else "print"

(* The migrating job: its core image is its serialized state — the stage
   plan still ahead and the work log so far. *)
let decode_state image = String.split_on_char ';' (Bytes.to_string image)

let encode_state parts = Bytes.of_string (String.concat ";" parts)

let decode_load_pattern b =
  let v = ref 0 in
  for i = 0 to 5 do
    v := (!v lsl 8) lor Char.code (Bytes.get b i)
  done;
  Pattern.of_int !v

(* Boot a free machine of [kind] with [image] and start it. *)
let migrate_to env ~kind ~image =
  match Sodal.discover_list env (Pattern.boot_pattern kind) ~max:8 with
  | [] -> Error `No_free_machine
  | mid :: _ ->
    let boot = Pattern.boot_pattern kind in
    let into = Bytes.create 6 in
    let c = Sodal.b_get env (Sodal.server ~mid ~pattern:boot) ~arg:0 ~into in
    if c.Sodal.status <> Sodal.Comp_ok then Error `Boot_refused
    else begin
      let load = decode_load_pattern into in
      let sv = Sodal.server ~mid ~pattern:load in
      let put = Sodal.b_put env sv ~arg:0 image in
      if put.Sodal.status <> Sodal.Comp_ok then Error `Image_failed
      else begin
        let start = Sodal.b_signal env sv ~arg:0 in
        if start.Sodal.status = Sodal.Comp_ok then Ok mid else Error `Start_failed
      end
    end

let job_spec ~hops image =
  let state = decode_state image in
  {
    Sodal.default_spec with
    task =
      (fun env ->
        match state with
        | plan :: log ->
          let stages = if plan = "" then [] else String.split_on_char ',' plan in
          (match stages with
           | [] ->
             (* Plan exhausted: deliver the work log to the reporter. *)
             let reporter = Sodal.discover env reporter_pattern in
             ignore
               (Sodal.b_put env reporter ~arg:0
                  (Bytes.of_string (String.concat ";" (List.rev log))));
             Sodal.die env
           | stage :: rest ->
             let kind = int_of_string stage in
             (* do this stage's work here, then move on *)
             Sodal.compute env 50_000;
             let entry = Printf.sprintf "%s@%d" (stage_of_kind kind) (Sodal.my_mid env) in
             hops := (Sodal.my_mid env, stage_of_kind kind) :: !hops;
             let image' = encode_state (String.concat "," rest :: (entry :: log)) in
             (match
                if rest = [] then
                  (* final state: report, no further migration *)
                  Ok (Sodal.my_mid env)
                else migrate_to env ~kind:(int_of_string (List.hd rest)) ~image:image'
              with
              | Ok _ when rest <> [] -> Sodal.die env
              | Ok _ ->
                let reporter = Sodal.discover env reporter_pattern in
                ignore
                  (Sodal.b_put env reporter ~arg:0
                     (Bytes.of_string (String.concat ";" (List.rev (entry :: log)))));
                Sodal.die env
              | Error _ -> Sodal.die env))
        | [] -> Sodal.die env);
  }

let run ?(seed = 61) () =
  let net = Network.create ~seed () in
  let hops = ref [] in
  (* three free machines of the three kinds, in scrambled mid order *)
  let k_disk = Network.add_node ~boot_kinds:[ kind_disk ] net ~mid:3 in
  let k_fpu = Network.add_node ~boot_kinds:[ kind_fpu ] net ~mid:1 in
  let k_printer = Network.add_node ~boot_kinds:[ kind_printer ] net ~mid:4 in
  List.iter
    (fun kernel -> Sodal.bootable_dynamic kernel (fun ~parent:_ ~image -> job_spec ~hops image))
    [ k_disk; k_fpu; k_printer ];
  (* the reporter, plus the launcher that starts the pipeline *)
  let k_reporter = Network.add_node net ~mid:0 in
  let result = ref "" in
  ignore
    (Sodal.attach k_reporter
       {
         Sodal.default_spec with
         init = (fun env ~parent:_ -> Sodal.advertise env reporter_pattern);
         on_request =
           (fun env info ->
             let into = Bytes.create info.Sodal.put_size in
             let _, got = Sodal.accept_current_put env ~arg:0 ~into in
             result := Bytes.sub_string into 0 got);
       });
  let k_launcher = Network.add_node net ~mid:2 in
  let freed = ref false in
  ignore
    (Sodal.attach k_launcher
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let plan = Printf.sprintf "%d,%d,%d" kind_disk kind_fpu kind_printer in
             (* Launch: migrate "ourselves" onto the disk machine with the
                whole plan as the state. *)
             (match migrate_to env ~kind:kind_disk ~image:(encode_state [ plan ]) with
              | Ok _ -> ()
              | Error _ -> failwith "launch failed");
             (* After the pipeline drains, the intermediate machines must
                be bootable again. *)
             Sodal.compute env 3_000_000;
             let free_disk = Sodal.discover_list env (Pattern.boot_pattern kind_disk) ~max:4 in
             let free_fpu = Sodal.discover_list env (Pattern.boot_pattern kind_fpu) ~max:4 in
             freed := free_disk <> [] && free_fpu <> [];
             Sodal.serve env);
       });
  ignore (Network.run ~until:600_000_000 net);
  { hops = List.rev !hops; result = !result; machines_freed = !freed }

let pp_summary ppf s =
  Format.fprintf ppf "visited [%s]; reporter received %S; machines freed: %b"
    (String.concat " -> " (List.map (fun (mid, st) -> Printf.sprintf "%s@%d" st mid) s.hops))
    s.result s.machines_freed
