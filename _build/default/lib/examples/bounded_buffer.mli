(** Two-way bounded buffer (§4.4.1).

    Producers (think teletype drivers) stream items to a consumer (think
    file server) that buffers to smooth the speed mismatch. Producers
    double-buffer so they keep working while their last PUT is pending; the
    consumer queues REQUESTER SIGNATURES (never data) in its handler,
    ACCEPTs into a free-pool buffer from its task, and exerts backpressure
    by CLOSEing its handler when the signature queue fills. *)

type summary = {
  produced : int;  (** items sent by all producers *)
  consumed : int;  (** items processed by the consumer *)
  in_order : bool;  (** per-producer FIFO held *)
  backpressure_closes : int;  (** times the consumer closed its handler *)
}

val run :
  ?seed:int ->
  ?producers:int ->
  ?items_per_producer:int ->
  ?consumer_service_us:int ->
  unit ->
  summary

val pp_summary : Format.formatter -> summary -> unit
