(** File service (§4.4.5).

    A client locates the file server with DISCOVER, opens a file with an
    EXCHANGE on the well-known OPEN entry (file name out, file-descriptor
    {e pattern} back — a capability minted with GETUNIQUEID and advertised
    by the server), then performs READ / WRITE / SEEK / CLOSE transactions
    addressed directly to that pattern, the operation kind travelling in
    the REQUEST argument. Operations are queued by the handler and executed
    by the server task in arrival order. *)

module Sodal = Soda_runtime.Sodal
module Types = Soda_base.Types

(** The well-known file-server name (specific enough to DISCOVER). *)
val fileserver_pattern : Soda_base.Pattern.t

(** Server program with an empty in-memory volume. *)
val server_spec : unit -> Sodal.spec

(** {1 Client protocol} *)

type file  (** an open remote file: <server mid, fd pattern> + position *)

exception File_error of string

val open_file : Sodal.env -> mid:int -> string -> file
val write : Sodal.env -> file -> bytes -> unit
val read : Sodal.env -> file -> len:int -> bytes
val seek : Sodal.env -> file -> pos:int -> unit
val close : Sodal.env -> file -> unit

(** {1 Demo harness} *)

type summary = {
  files_written : int;
  bytes_written : int;
  bytes_read_back : int;
  round_trips_ok : bool;  (** every read-back matched what was written *)
  stale_fd_rejected : bool;  (** access after CLOSE failed, as it must *)
}

val run : ?seed:int -> ?clients:int -> unit -> summary

val pp_summary : Format.formatter -> summary -> unit
