(** Four-way bounded buffer (§4.4.2).

    Two clients, each attached to a character device with an internal
    buffer and CTRL-S/CTRL-Q flow control. Each client reads from its
    device and ships the data to the other client, which buffers it and
    feeds its own device. The interesting part is the blocking EXCHANGE:
    writing the remote buffer returns a status in the same transaction, so
    the producer learns immediately that the remote side is full and stops
    its device — four flow-controlled streams managed by two clients. *)

type summary = {
  transferred_a_to_b : int;  (** characters that completed the A -> B path *)
  transferred_b_to_a : int;
  flow_stops : int;  (** times a producer was paused by a FULL status *)
  lost : int;  (** characters lost anywhere (must be 0) *)
}

val run : ?seed:int -> ?chars_each_way:int -> ?duration_s:float -> unit -> summary

val pp_summary : Format.formatter -> summary -> unit
