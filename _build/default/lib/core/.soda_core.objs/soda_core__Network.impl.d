lib/core/network.ml: Hashtbl Kernel List Printf Soda_base Soda_net Soda_sim
