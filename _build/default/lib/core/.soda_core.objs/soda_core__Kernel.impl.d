lib/core/kernel.ml: Array Buffer Bytes Char Hashtbl List Printf Queue Soda_base Soda_net Soda_proto Soda_sim
