lib/core/kernel.mli: Soda_base Soda_net Soda_sim
