lib/core/network.mli: Kernel Soda_base Soda_net Soda_sim
