(* Tests for the §6.17 library extensions (multicast, bidding, name server)
   and the §6.2 process-migration example. *)

open Helpers
module Multicast = Soda_facilities.Multicast
module Bidding = Soda_facilities.Bidding
module Nameserver = Soda_facilities.Nameserver
module Migration = Soda_examples.Migration

let patt = Pattern.well_known 0o555

(* ---- multicast -------------------------------------------------------------- *)

let test_multicast_all_members () =
  let net, kernels = make_net 5 in
  let received = Array.make 5 "" in
  for mid = 0 to 3 do
    ignore
      (Sodal.attach (List.nth kernels mid)
         {
           Sodal.default_spec with
           init = (fun env ~parent:_ -> Sodal.advertise env patt);
           on_request =
             (fun env info ->
               let into = Bytes.create info.Sodal.put_size in
               let _, got = Sodal.accept_current_put env ~arg:0 ~into in
               received.(Sodal.my_mid env) <- Bytes.sub_string into 0 got);
         })
  done;
  let outcomes = ref [] in
  ignore
    (Sodal.attach (List.nth kernels 4)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             outcomes :=
               Multicast.put env ~group:[ 0; 1; 2; 3 ] ~pattern:patt
                 (bytes_of_string "to everyone"));
       });
  run net;
  Alcotest.(check int) "four outcomes" 4 (List.length !outcomes);
  List.iter
    (fun o -> Alcotest.(check bool) "delivered" true (o.Multicast.status = Sodal.Comp_ok))
    !outcomes;
  for mid = 0 to 3 do
    Alcotest.(check string) "payload" "to everyone" received.(mid)
  done

let test_multicast_partial_failure () =
  (* One member never advertises: its outcome is UNADVERTISED, the rest
     still succeed — exactly the per-member semantics of §6.17.1. *)
  let net, kernels = make_net 4 in
  ignore (echo_server (List.nth kernels 0) patt);
  ignore (echo_server (List.nth kernels 1) patt);
  ignore (Sodal.attach (List.nth kernels 2) Sodal.default_spec);
  let outcomes = ref [] in
  ignore
    (Sodal.attach (List.nth kernels 3)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             outcomes :=
               Multicast.put env ~group:[ 0; 1; 2 ] ~pattern:patt (bytes_of_string "x"));
       });
  run net;
  let status_of mid =
    (List.find (fun o -> o.Multicast.mid = mid) !outcomes).Multicast.status
  in
  Alcotest.(check bool) "member 0 ok" true (status_of 0 = Sodal.Comp_ok);
  Alcotest.(check bool) "member 1 ok" true (status_of 1 = Sodal.Comp_ok);
  Alcotest.(check bool) "member 2 failed" true (status_of 2 = Sodal.Comp_unadvertised)

let test_multicast_discovered () =
  let net, kernels = make_net 4 in
  ignore (echo_server (List.nth kernels 0) patt);
  ignore (echo_server (List.nth kernels 2) patt);
  let outcomes = ref [] in
  ignore
    (Sodal.attach (List.nth kernels 3)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             outcomes := Multicast.put_discovered env ~pattern:patt (bytes_of_string "hi"));
       });
  run net;
  Alcotest.(check (list int)) "exactly the advertisers" [ 0; 2 ]
    (List.map (fun o -> o.Multicast.mid) !outcomes)

(* ---- bidding ------------------------------------------------------------------ *)

let test_bidding_selects_least_loaded () =
  let net, kernels = make_net 4 in
  let bidding_server kernel load =
    let hook = ref (fun _ _ -> false) in
    ignore
      (Sodal.attach kernel
         {
           Sodal.default_spec with
           init =
             (fun env ~parent:_ -> hook := Bidding.serve_bids env ~pattern:patt ~load);
           on_request =
             (fun env info ->
               if not (!hook env info) then
                 ignore (Sodal.accept_current_signal env ~arg:0));
         })
  in
  bidding_server (List.nth kernels 0) (fun () -> 12);
  bidding_server (List.nth kernels 1) (fun () -> 3);
  bidding_server (List.nth kernels 2) (fun () -> 7);
  let winner = ref None in
  ignore
    (Sodal.attach (List.nth kernels 3)
       {
         Sodal.default_spec with
         task = (fun env -> winner := Bidding.select env ~pattern:patt ());
       });
  run net;
  match !winner with
  | Some ({ Types.sv_mid = Types.Mid 1; _ }, 3) -> ()
  | Some ({ Types.sv_mid = Types.Mid m; _ }, load) ->
    Alcotest.failf "picked mid %d (load %d), wanted mid 1 (load 3)" m load
  | _ -> Alcotest.fail "no bidder selected"

let test_bidding_no_bidders () =
  let net, kernels = make_net 2 in
  ignore (List.nth kernels 0);
  let winner = ref (Some (Sodal.server ~mid:9 ~pattern:patt, 0)) in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task = (fun env -> winner := Bidding.select env ~pattern:patt ());
       });
  run net;
  Alcotest.(check bool) "none" true (!winner = None)

(* ---- name server ----------------------------------------------------------------- *)

let test_nameserver_roundtrip () =
  let net, kernels = make_net 3 in
  ignore (Sodal.attach (List.nth kernels 0) (Nameserver.spec ()));
  ignore (echo_server (List.nth kernels 1) patt);
  let looked_up = ref None in
  let listing = ref [] in
  let missing = ref false in
  let dup_rejected = ref false in
  ignore
    (Sodal.attach (List.nth kernels 2)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let sb = Sodal.discover env Nameserver.switchboard_pattern in
             let echo_sig = Sodal.server ~mid:1 ~pattern:patt in
             (match Nameserver.register env sb ~name:"/services/echo" echo_sig with
              | Ok () -> ()
              | Error _ -> Alcotest.fail "register failed");
             (match Nameserver.register env sb ~name:"/services/time" echo_sig with
              | Ok () -> ()
              | Error _ -> Alcotest.fail "register 2 failed");
             (* duplicate names are first-wins *)
             (match
                Nameserver.register env sb ~name:"/services/echo"
                  (Sodal.server ~mid:9 ~pattern:patt)
              with
              | Error Nameserver.Already_registered -> dup_rejected := true
              | Ok () | Error _ -> ());
             (match Nameserver.lookup env sb ~name:"/services/echo" with
              | Ok signature -> looked_up := Some signature
              | Error _ -> ());
             (match Nameserver.list env sb ~prefix:"/services" with
              | Ok names -> listing := names
              | Error _ -> ());
             (match Nameserver.lookup env sb ~name:"/nothing" with
              | Error Nameserver.Not_found -> missing := true
              | Ok _ | Error _ -> ());
             (* use the resolved signature for real *)
             match !looked_up with
             | Some sv -> ignore (Sodal.b_signal env sv ~arg:0)
             | None -> ());
       });
  run net;
  Alcotest.(check bool) "lookup resolves" true
    (!looked_up = Some (Sodal.server ~mid:1 ~pattern:patt));
  Alcotest.(check (list string)) "hierarchical listing"
    [ "/services/echo"; "/services/time" ] !listing;
  Alcotest.(check bool) "unknown name not found" true !missing;
  Alcotest.(check bool) "duplicate registration rejected" true !dup_rejected

let test_nameserver_unregister () =
  let net, kernels = make_net 2 in
  ignore (Sodal.attach (List.nth kernels 0) (Nameserver.spec ()));
  let gone = ref false in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let sb = Sodal.discover env Nameserver.switchboard_pattern in
             let sv = Sodal.server ~mid:1 ~pattern:patt in
             ignore (Nameserver.register env sb ~name:"temp" sv);
             ignore (Nameserver.unregister env sb ~name:"temp");
             match Nameserver.lookup env sb ~name:"temp" with
             | Error Nameserver.Not_found -> gone := true
             | Ok _ | Error _ -> ());
       });
  run net;
  Alcotest.(check bool) "unregistered" true !gone

(* ---- migration --------------------------------------------------------------------- *)

let test_migration_pipeline () =
  let s = Migration.run ~seed:61 () in
  Alcotest.(check (list string)) "visited all three stages in order"
    [ "compile"; "compute"; "print" ]
    (List.map snd s.Migration.hops);
  Alcotest.(check string) "final state carries the whole log"
    "compile@3;compute@1;print@4" s.Migration.result;
  Alcotest.(check bool) "intermediate machines freed" true s.Migration.machines_freed

let suites =
  [
    ( "extensions.multicast",
      [
        Alcotest.test_case "all members" `Quick test_multicast_all_members;
        Alcotest.test_case "partial failure" `Quick test_multicast_partial_failure;
        Alcotest.test_case "discovered group" `Quick test_multicast_discovered;
      ] );
    ( "extensions.bidding",
      [
        Alcotest.test_case "least loaded wins" `Quick test_bidding_selects_least_loaded;
        Alcotest.test_case "no bidders" `Quick test_bidding_no_bidders;
      ] );
    ( "extensions.nameserver",
      [
        Alcotest.test_case "register/lookup/list" `Quick test_nameserver_roundtrip;
        Alcotest.test_case "unregister" `Quick test_nameserver_unregister;
      ] );
    ( "extensions.migration",
      [ Alcotest.test_case "pipeline hops machines" `Quick test_migration_pipeline ] );
  ]
