(* Shared test utilities. *)

module Engine = Soda_sim.Engine
module Types = Soda_base.Types
module Pattern = Soda_base.Pattern
module Cost = Soda_base.Cost_model
module Network = Soda_core.Network
module Kernel = Soda_core.Kernel
module Sodal = Soda_runtime.Sodal

let bytes_of_string = Bytes.of_string
let string_of_bytes b = Bytes.to_string b

(* A network with [n] nodes, mids 0..n-1. *)
let make_net ?(seed = 7) ?(cost = Cost.default) ?trace n =
  let net = Network.create ~seed ~cost ?trace () in
  let kernels = List.init n (fun mid -> Network.add_node net ~mid) in
  (net, kernels)

(* Run until quiescent or [horizon] simulated seconds. *)
let run ?(horizon = 300.0) net =
  ignore (Network.run ~until:(int_of_float (horizon *. 1e6)) net)

let check_eventually net ~horizon flag msg =
  run ~horizon net;
  Alcotest.(check bool) msg true !flag

(* A server that advertises [pattern] and accepts every arriving request in
   its handler, echoing [reply] back on GET/EXCHANGE. *)
let echo_server ?(reply = "") kernel pattern =
  Sodal.attach kernel
    {
      Sodal.default_spec with
      init = (fun env ~parent:_ -> Sodal.advertise env pattern);
      on_request =
        (fun env info ->
          let into = Bytes.create info.Sodal.put_size in
          let data = bytes_of_string reply in
          ignore (Sodal.accept_current_exchange env ~arg:0 ~into ~data));
    }
