test/test_extensions.ml: Alcotest Array Bytes Helpers List Pattern Soda_examples Soda_facilities Sodal Types
