test/test_examples.ml: Alcotest Array List Printf Soda_examples
