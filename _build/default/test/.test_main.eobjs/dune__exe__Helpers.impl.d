test/helpers.ml: Alcotest Bytes List Soda_base Soda_core Soda_runtime Soda_sim
