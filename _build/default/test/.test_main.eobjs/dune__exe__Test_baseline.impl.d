test/test_baseline.ml: Alcotest Bytes Char List Soda_baseline Soda_net Soda_sim String
