test/test_properties.ml: Bytes Cost Fun Gen Hashtbl Helpers List Network Pattern QCheck QCheck_alcotest Soda_net Soda_sim Sodal Types
