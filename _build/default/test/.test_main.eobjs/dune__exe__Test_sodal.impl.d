test/test_sodal.ml: Alcotest Bytes Helpers List Network Pattern QCheck QCheck_alcotest Soda_runtime Sodal Types
