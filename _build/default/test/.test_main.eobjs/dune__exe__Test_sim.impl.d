test/test_sim.ml: Alcotest Array List QCheck QCheck_alcotest Soda_sim
