test/test_sodal_lang.ml: Alcotest Helpers List Network Pattern Soda_sodal_lang Sodal String
