test/test_transport.ml: Alcotest Bytes Cost Helpers Kernel List Network Option Pattern Soda_net Soda_sim Sodal Types
