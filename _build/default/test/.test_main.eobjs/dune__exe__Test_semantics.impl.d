test/test_semantics.ml: Alcotest Bytes Char Helpers List Network Option Pattern Soda_facilities Sodal
