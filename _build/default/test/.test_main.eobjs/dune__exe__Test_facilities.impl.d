test/test_facilities.ml: Alcotest Array Bytes Helpers List Network Pattern Printf Soda_facilities Sodal
