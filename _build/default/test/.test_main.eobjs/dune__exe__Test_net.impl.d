test/test_net.ml: Alcotest Bytes Char Gen List QCheck QCheck_alcotest Soda_net Soda_sim
