test/test_stream.ml: Alcotest Bytes Char Helpers Kernel List Network Pattern Soda_facilities Soda_net Sodal String
