test/test_kernel.ml: Alcotest Bytes Char Cost Helpers Kernel List Pattern Soda_sim Sodal Types
