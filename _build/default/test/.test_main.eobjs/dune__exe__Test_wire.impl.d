test/test_wire.ml: Alcotest Bytes Char Gen QCheck QCheck_alcotest Soda_base Soda_proto
