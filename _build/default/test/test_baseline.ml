(* The *MOD comparison baseline (§5.5): functional correctness and the
   structural cost ordering against SODA. *)

module Engine = Soda_sim.Engine
module Bus = Soda_net.Bus
module Starmod = Soda_baseline.Starmod

let setup () =
  let engine = Engine.create ~seed:55 () in
  let bus = Bus.create engine in
  (engine, bus)

let test_sync_call () =
  let engine, bus = setup () in
  let a = Starmod.create_node ~engine ~bus ~mid:0 () in
  let b = Starmod.create_node ~engine ~bus ~mid:1 () in
  Starmod.define_port b ~port:7 (fun payload ->
      Some (Bytes.of_string (String.uppercase_ascii (Bytes.to_string payload))));
  let reply = ref "" in
  Starmod.sync_call a ~dst:1 ~port:7 (Bytes.of_string "hello") ~on_reply:(fun r ->
      reply := Bytes.to_string r);
  ignore (Engine.run ~until:1_000_000 engine);
  Alcotest.(check string) "request/reply" "HELLO" !reply

let test_async_ordering () =
  let engine, bus = setup () in
  let a = Starmod.create_node ~engine ~bus ~mid:0 () in
  let b = Starmod.create_node ~engine ~bus ~mid:1 () in
  let received = ref [] in
  Starmod.define_port b ~port:1 (fun payload ->
      received := Bytes.to_string payload :: !received;
      None);
  let done_count = ref 0 in
  List.iter
    (fun msg ->
      Starmod.async_send a ~dst:1 ~port:1 (Bytes.of_string msg) ~on_done:(fun () ->
          incr done_count))
    [ "1"; "2"; "3" ];
  ignore (Engine.run ~until:2_000_000 engine);
  Alcotest.(check int) "all delivered" 3 !done_count;
  Alcotest.(check (list string)) "in order" [ "1"; "2"; "3" ] (List.rev !received)

let test_reliability_under_loss () =
  let engine, bus = setup () in
  Bus.set_loss_rate bus 0.3;
  let a = Starmod.create_node ~engine ~bus ~mid:0 () in
  let b = Starmod.create_node ~engine ~bus ~mid:1 () in
  let count = ref 0 in
  Starmod.define_port b ~port:1 (fun _ ->
      incr count;
      None);
  let delivered = ref 0 in
  List.iter
    (fun i ->
      Starmod.async_send a ~dst:1 ~port:1 (Bytes.make 1 (Char.chr i)) ~on_done:(fun () ->
          incr delivered))
    [ 1; 2; 3; 4; 5 ];
  ignore (Engine.run ~until:60_000_000 engine);
  Alcotest.(check int) "all acknowledged" 5 !delivered;
  Alcotest.(check int) "each delivered exactly once" 5 !count;
  Alcotest.(check bool) "retransmissions happened" true
    (Soda_sim.Stats.counter (Starmod.stats a) "starmod.pkt.retransmitted" > 0)

let test_cost_ordering_vs_soda () =
  (* The structural claim of T3: the multiprogrammed kernel's port call is
     substantially slower than SODA's B_SIGNAL on the same bus. *)
  let engine, bus = setup () in
  let a = Starmod.create_node ~engine ~bus ~mid:0 () in
  let b = Starmod.create_node ~engine ~bus ~mid:1 () in
  Starmod.define_port b ~port:1 (fun _ -> Some Bytes.empty);
  let t0 = Engine.now engine in
  let t_done = ref 0 in
  Starmod.sync_call a ~dst:1 ~port:1 Bytes.empty ~on_reply:(fun _ ->
      t_done := Engine.now engine);
  ignore (Engine.run ~until:1_000_000 engine);
  let starmod_ms = float_of_int (!t_done - t0) /. 1000.0 in
  Alcotest.(check bool) "starmod sync call in the paper's regime (15-25 ms)" true
    (starmod_ms > 15.0 && starmod_ms < 26.0)

let suites =
  [
    ( "baseline.starmod",
      [
        Alcotest.test_case "sync call" `Quick test_sync_call;
        Alcotest.test_case "async ordering" `Quick test_async_ordering;
        Alcotest.test_case "reliability under loss" `Quick test_reliability_under_loss;
        Alcotest.test_case "cost regime" `Quick test_cost_ordering_vs_soda;
      ] );
  ]
