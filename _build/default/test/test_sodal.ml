(* Integration tests of the SODAL runtime over the full stack:
   fibers -> kernel -> transport -> wire -> bus. *)

open Helpers
module Bqueue = Soda_runtime.Bqueue

let patt = Pattern.well_known 0o346

(* ---- basic data transfer -------------------------------------------------- *)

let test_b_put () =
  let net, kernels = make_net 2 in
  let received = ref "" in
  let k0, k1 = (List.nth kernels 0, List.nth kernels 1) in
  let _server =
    Sodal.attach k0
      {
        Sodal.default_spec with
        init = (fun env ~parent:_ -> Sodal.advertise env patt);
        on_request =
          (fun env info ->
            let into = Bytes.create info.Sodal.put_size in
            let status, got = Sodal.accept_current_put env ~arg:7 ~into in
            assert (status = Types.Accept_success);
            received := Bytes.sub_string into 0 got);
      }
  in
  let done_ = ref false in
  let _client =
    Sodal.attach k1
      {
        Sodal.default_spec with
        task =
          (fun env ->
            let c = Sodal.b_put env (Sodal.server ~mid:0 ~pattern:patt) ~arg:1 (bytes_of_string "hello soda") in
            Alcotest.(check bool) "completed ok" true (c.Sodal.status = Sodal.Comp_ok);
            Alcotest.(check int) "reply arg" 7 c.Sodal.reply_arg;
            Alcotest.(check int) "put transferred" 10 c.Sodal.put_transferred;
            done_ := true);
      }
  in
  run net;
  Alcotest.(check bool) "client finished" true !done_;
  Alcotest.(check string) "server received data" "hello soda" !received

let test_b_get () =
  let net, kernels = make_net 2 in
  let k0, k1 = (List.nth kernels 0, List.nth kernels 1) in
  let _server = echo_server ~reply:"file contents" k0 patt in
  let done_ = ref false in
  let _client =
    Sodal.attach k1
      {
        Sodal.default_spec with
        task =
          (fun env ->
            let into = Bytes.create 64 in
            let c = Sodal.b_get env (Sodal.server ~mid:0 ~pattern:patt) ~arg:0 ~into in
            Alcotest.(check bool) "ok" true (c.Sodal.status = Sodal.Comp_ok);
            Alcotest.(check int) "get transferred" 13 c.Sodal.get_transferred;
            Alcotest.(check string) "data" "file contents" (Bytes.sub_string into 0 13);
            done_ := true);
      }
  in
  check_eventually net ~horizon:300.0 done_ "b_get completed"

let test_b_exchange () =
  let net, kernels = make_net 2 in
  let k0, k1 = (List.nth kernels 0, List.nth kernels 1) in
  let server_got = ref "" in
  let _server =
    Sodal.attach k0
      {
        Sodal.default_spec with
        init = (fun env ~parent:_ -> Sodal.advertise env patt);
        on_request =
          (fun env info ->
            let into = Bytes.create info.Sodal.put_size in
            let _, got = Sodal.accept_current_exchange env ~arg:0 ~into ~data:(bytes_of_string "pong") in
            server_got := Bytes.sub_string into 0 got);
      }
  in
  let done_ = ref false in
  let _client =
    Sodal.attach k1
      {
        Sodal.default_spec with
        task =
          (fun env ->
            let into = Bytes.create 16 in
            let c =
              Sodal.b_exchange env (Sodal.server ~mid:0 ~pattern:patt) ~arg:0
                (bytes_of_string "ping") ~into
            in
            Alcotest.(check int) "both directions" 4 c.Sodal.get_transferred;
            Alcotest.(check string) "got pong" "pong" (Bytes.sub_string into 0 4);
            done_ := true);
      }
  in
  run net;
  Alcotest.(check bool) "finished" true !done_;
  Alcotest.(check string) "server got ping" "ping" !server_got

let test_b_signal_and_reject () =
  let net, kernels = make_net 2 in
  let k0, k1 = (List.nth kernels 0, List.nth kernels 1) in
  let count = ref 0 in
  let _server =
    Sodal.attach k0
      {
        Sodal.default_spec with
        init = (fun env ~parent:_ -> Sodal.advertise env patt);
        on_request =
          (fun env _ ->
            incr count;
            if !count = 1 then ignore (Sodal.accept_current_signal env ~arg:0)
            else Sodal.reject env);
      }
  in
  let results = ref [] in
  let _client =
    Sodal.attach k1
      {
        Sodal.default_spec with
        task =
          (fun env ->
            let sv = Sodal.server ~mid:0 ~pattern:patt in
            let c1 = Sodal.b_signal env sv ~arg:0 in
            let c2 = Sodal.b_signal env sv ~arg:0 in
            results := [ c1.Sodal.status; c2.Sodal.status ]);
      }
  in
  run net;
  Alcotest.(check bool) "first ok, second rejected" true
    (!results = [ Sodal.Comp_ok; Sodal.Comp_rejected ])

let test_accept_smaller_buffer () =
  (* §4.1.2: the server may ACCEPT with a smaller buffer than REQUESTed. *)
  let net, kernels = make_net 2 in
  let k0, k1 = (List.nth kernels 0, List.nth kernels 1) in
  let _server =
    Sodal.attach k0
      {
        Sodal.default_spec with
        init = (fun env ~parent:_ -> Sodal.advertise env patt);
        on_request =
          (fun env _ ->
            let into = Bytes.create 4 in
            ignore (Sodal.accept_current_put env ~arg:0 ~into));
      }
  in
  let transferred = ref (-1) in
  let _client =
    Sodal.attach k1
      {
        Sodal.default_spec with
        task =
          (fun env ->
            let c =
              Sodal.b_put env (Sodal.server ~mid:0 ~pattern:patt) ~arg:0
                (bytes_of_string "0123456789")
            in
            transferred := c.Sodal.put_transferred);
      }
  in
  run net;
  Alcotest.(check int) "partial transfer reported" 4 !transferred

let test_unadvertised () =
  let net, kernels = make_net 2 in
  let _k0 = List.nth kernels 0 in
  let status = ref Sodal.Comp_ok in
  let _client =
    Sodal.attach (List.nth kernels 1)
      {
        Sodal.default_spec with
        task =
          (fun env ->
            let c = Sodal.b_signal env (Sodal.server ~mid:0 ~pattern:patt) ~arg:0 in
            status := c.Sodal.status);
      }
  in
  run net;
  Alcotest.(check bool) "unadvertised" true (!status = Sodal.Comp_unadvertised)

let test_unadvertise_stops_matching () =
  let net, kernels = make_net 2 in
  let k0 = List.nth kernels 0 in
  let served = ref 0 in
  let _server =
    Sodal.attach k0
      {
        Sodal.default_spec with
        init = (fun env ~parent:_ -> Sodal.advertise env patt);
        on_request =
          (fun env _ ->
            incr served;
            ignore (Sodal.accept_current_signal env ~arg:0);
            Sodal.unadvertise env patt);
      }
  in
  let statuses = ref [] in
  let _client =
    Sodal.attach (List.nth kernels 1)
      {
        Sodal.default_spec with
        task =
          (fun env ->
            let sv = Sodal.server ~mid:0 ~pattern:patt in
            let c1 = Sodal.b_signal env sv ~arg:0 in
            let c2 = Sodal.b_signal env sv ~arg:0 in
            statuses := [ c1.Sodal.status; c2.Sodal.status ]);
      }
  in
  run net;
  Alcotest.(check bool) "second fails" true
    (!statuses = [ Sodal.Comp_ok; Sodal.Comp_unadvertised ]);
  Alcotest.(check int) "served once" 1 !served

let test_accept_current_outside_handler () =
  let net, kernels = make_net 1 in
  let raised = ref false in
  let _c =
    Sodal.attach (List.nth kernels 0)
      {
        Sodal.default_spec with
        task =
          (fun env ->
            (try ignore (Sodal.accept_current_signal env ~arg:0)
             with Sodal.Sodal_error _ -> raised := true));
      }
  in
  run net;
  Alcotest.(check bool) "raises outside handler" true !raised

let test_blocking_request_in_handler_raises () =
  let net, kernels = make_net 2 in
  let k0 = List.nth kernels 0 in
  let raised = ref false in
  let _server =
    Sodal.attach k0
      {
        Sodal.default_spec with
        init = (fun env ~parent:_ -> Sodal.advertise env patt);
        on_request =
          (fun env _ ->
            (try ignore (Sodal.b_signal env (Sodal.server ~mid:1 ~pattern:patt) ~arg:0)
             with Sodal.Sodal_error _ -> raised := true);
            ignore (Sodal.accept_current_signal env ~arg:0));
      }
  in
  let _client =
    Sodal.attach (List.nth kernels 1)
      {
        Sodal.default_spec with
        task =
          (fun env -> ignore (Sodal.b_signal env (Sodal.server ~mid:0 ~pattern:patt) ~arg:0));
      }
  in
  run net;
  Alcotest.(check bool) "blocking request in handler rejected" true !raised

(* ---- handler state machine -------------------------------------------------- *)

let test_close_defers_arrivals () =
  let net, kernels = make_net 2 in
  let k0 = List.nth kernels 0 in
  let delivered_at = ref 0 in
  let _server =
    Sodal.attach k0
      {
        Sodal.default_spec with
        init =
          (fun env ~parent:_ ->
            Sodal.advertise env patt;
            Sodal.close_handler env);
        on_request =
          (fun env _ ->
            delivered_at := Sodal.now env;
            ignore (Sodal.accept_current_signal env ~arg:0));
        task =
          (fun env ->
            (* Keep the handler closed for 2 simulated seconds. *)
            Sodal.compute env 2_000_000;
            Sodal.open_handler env;
            Sodal.serve env);
      }
  in
  let completed = ref false in
  let _client =
    Sodal.attach (List.nth kernels 1)
      {
        Sodal.default_spec with
        task =
          (fun env ->
            let c = Sodal.b_signal env (Sodal.server ~mid:0 ~pattern:patt) ~arg:0 in
            completed := c.Sodal.status = Sodal.Comp_ok);
      }
  in
  run net;
  Alcotest.(check bool) "eventually completed" true !completed;
  Alcotest.(check bool) "delivered only after OPEN" true (!delivered_at >= 2_000_000)

let test_task_queue_accept () =
  (* The port pattern of §4.2.1: handler enqueues, task accepts. *)
  let net, kernels = make_net 2 in
  let k0 = List.nth kernels 0 in
  let processed = ref [] in
  let q = Bqueue.create 8 in
  let _server =
    Sodal.attach k0
      {
        Sodal.default_spec with
        init = (fun env ~parent:_ -> Sodal.advertise env patt);
        on_request = (fun _ info -> Bqueue.enqueue q info.Sodal.asker);
        task =
          (fun env ->
            let served = ref 0 in
            while !served < 3 do
              if not (Bqueue.is_empty q) then begin
                let asker = Bqueue.dequeue q in
                let into = Bytes.create 8 in
                let _, got = Sodal.accept_put env asker ~arg:0 ~into in
                processed := Bytes.sub_string into 0 got :: !processed;
                incr served
              end
              else Sodal.idle env
            done);
      }
  in
  let _client =
    Sodal.attach (List.nth kernels 1)
      {
        Sodal.default_spec with
        task =
          (fun env ->
            let sv = Sodal.server ~mid:0 ~pattern:patt in
            List.iter
              (fun msg -> ignore (Sodal.b_put env sv ~arg:0 (bytes_of_string msg)))
              [ "one"; "two"; "three" ]);
      }
  in
  run net;
  Alcotest.(check (list string)) "queued and served in order" [ "one"; "two"; "three" ]
    (List.rev !processed)

let test_maxrequests () =
  let net, kernels = make_net 2 in
  let k0 = List.nth kernels 0 in
  (* A server that never accepts, so requests stay uncompleted. *)
  let _server =
    Sodal.attach k0
      {
        Sodal.default_spec with
        init = (fun env ~parent:_ -> Sodal.advertise env patt);
      }
  in
  let raised = ref false in
  let _client =
    Sodal.attach (List.nth kernels 1)
      {
        Sodal.default_spec with
        task =
          (fun env ->
            let sv = Sodal.server ~mid:0 ~pattern:patt in
            for _ = 1 to 3 do
              ignore (Sodal.signal env sv ~arg:0)
            done;
            (try ignore (Sodal.signal env sv ~arg:0)
             with Sodal.Too_many_requests -> raised := true);
            Sodal.idle env);
      }
  in
  ignore (Network.run ~until:10_000_000 net);
  Alcotest.(check bool) "MAXREQUESTS enforced" true !raised

let test_non_blocking_overlap () =
  (* Double-buffering: two PUTs outstanding at once complete in order. *)
  let net, kernels = make_net 2 in
  let k0 = List.nth kernels 0 in
  let _server = echo_server k0 patt in
  let completions = ref [] in
  let tids = ref [] in
  let _client =
    Sodal.attach (List.nth kernels 1)
      {
        Sodal.default_spec with
        on_completion = (fun _ c -> completions := c.Sodal.tid :: !completions);
        task =
          (fun env ->
            let sv = Sodal.server ~mid:0 ~pattern:patt in
            let t1 = Sodal.put env sv ~arg:0 (bytes_of_string "a") in
            let t2 = Sodal.put env sv ~arg:0 (bytes_of_string "b") in
            tids := [ t1; t2 ];
            while List.length !completions < 2 do
              Sodal.idle env
            done);
      }
  in
  run net;
  Alcotest.(check bool) "both completed in issue order" true (List.rev !completions = !tids)

let test_ordering_same_server () =
  (* §3.3.2 rule 3: requests to the same server are delivered in order. *)
  let net, kernels = make_net 2 in
  let k0 = List.nth kernels 0 in
  let seen = ref [] in
  let _server =
    Sodal.attach k0
      {
        Sodal.default_spec with
        init = (fun env ~parent:_ -> Sodal.advertise env patt);
        on_request =
          (fun env info ->
            seen := info.Sodal.arg :: !seen;
            ignore (Sodal.accept_current_signal env ~arg:0));
      }
  in
  let done_ = ref false in
  let _client =
    Sodal.attach (List.nth kernels 1)
      {
        Sodal.default_spec with
        task =
          (fun env ->
            let sv = Sodal.server ~mid:0 ~pattern:patt in
            let t1 = Sodal.signal env sv ~arg:1 in
            let t2 = Sodal.signal env sv ~arg:2 in
            let t3 = Sodal.signal env sv ~arg:3 in
            ignore (t1, t2, t3);
            while List.length !seen < 3 do
              Sodal.idle env
            done;
            done_ := true);
      }
  in
  run net;
  Alcotest.(check bool) "finished" true !done_;
  Alcotest.(check (list int)) "in-order delivery" [ 1; 2; 3 ] (List.rev !seen)

let test_die_then_unadvertised () =
  let net, kernels = make_net 2 in
  let k0 = List.nth kernels 0 in
  let _server =
    Sodal.attach k0
      {
        Sodal.default_spec with
        init = (fun env ~parent:_ -> Sodal.advertise env patt);
        task = (fun env -> Sodal.die env);
      }
  in
  let status = ref Sodal.Comp_ok in
  let _client =
    Sodal.attach (List.nth kernels 1)
      {
        Sodal.default_spec with
        task =
          (fun env ->
            Sodal.compute env 200_000;
            let c = Sodal.b_signal env (Sodal.server ~mid:0 ~pattern:patt) ~arg:0 in
            status := c.Sodal.status);
      }
  in
  run net;
  Alcotest.(check bool) "dead client's patterns cleared" true
    (!status = Sodal.Comp_unadvertised)

let test_getuniqueid_unique () =
  let net, kernels = make_net 2 in
  let ids = ref [] in
  let collect kernel =
    ignore
      (Sodal.attach kernel
         {
           Sodal.default_spec with
           task =
             (fun env ->
               for _ = 1 to 50 do
                 (* Bind before consing: [::] evaluates right-to-left, and
                    getuniqueid suspends the fiber, so [!ids] must be read
                    after it returns. *)
                 let id = Pattern.to_int (Sodal.getuniqueid env) in
                 ids := id :: !ids
               done);
         })
  in
  List.iter collect kernels;
  run net;
  let sorted = List.sort_uniq compare !ids in
  Alcotest.(check int) "100 distinct ids" 100 (List.length sorted)

let test_negative_args_roundtrip () =
  let net, kernels = make_net 2 in
  let k0 = List.nth kernels 0 in
  let got_arg = ref 0 in
  let _server =
    Sodal.attach k0
      {
        Sodal.default_spec with
        init = (fun env ~parent:_ -> Sodal.advertise env patt);
        on_request =
          (fun env info ->
            got_arg := info.Sodal.arg;
            ignore (Sodal.accept_current_signal env ~arg:(-123456)));
      }
  in
  let reply = ref 0 in
  let _client =
    Sodal.attach (List.nth kernels 1)
      {
        Sodal.default_spec with
        task =
          (fun env ->
            let c = Sodal.b_signal env (Sodal.server ~mid:0 ~pattern:patt) ~arg:(-777) in
            reply := c.Sodal.reply_arg);
      }
  in
  run net;
  Alcotest.(check int) "request arg" (-777) !got_arg;
  Alcotest.(check int) "accept arg" (-123456) !reply

(* ---- bounded queue ------------------------------------------------------------ *)

let test_bqueue () =
  let q = Bqueue.create 3 in
  Alcotest.(check bool) "empty" true (Bqueue.is_empty q);
  Bqueue.enqueue q 1;
  Alcotest.(check bool) "almost empty" true (Bqueue.almost_empty q);
  Bqueue.enqueue q 2;
  Alcotest.(check bool) "almost full" true (Bqueue.almost_full q);
  Bqueue.enqueue q 3;
  Alcotest.(check bool) "full" true (Bqueue.is_full q);
  Alcotest.check_raises "overflow" Bqueue.Full (fun () -> Bqueue.enqueue q 4);
  Alcotest.(check int) "fifo" 1 (Bqueue.dequeue q);
  Bqueue.filter_inplace q (fun x -> x <> 2);
  Alcotest.(check (list int)) "filtered" [ 3 ] (Bqueue.to_list q);
  Alcotest.(check int) "drain" 3 (Bqueue.dequeue q);
  Alcotest.check_raises "underflow" Bqueue.Empty (fun () -> ignore (Bqueue.dequeue q))

let prop_bqueue_fifo =
  QCheck.Test.make ~name:"bounded queue is fifo within capacity" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let q = Bqueue.create (max 1 (List.length xs)) in
      List.iter (Bqueue.enqueue q) xs;
      let out = List.map (fun _ -> Bqueue.dequeue q) xs in
      out = xs)

let suites =
  [
    ( "sodal.transfer",
      [
        Alcotest.test_case "b_put" `Quick test_b_put;
        Alcotest.test_case "b_get" `Quick test_b_get;
        Alcotest.test_case "b_exchange" `Quick test_b_exchange;
        Alcotest.test_case "b_signal + reject" `Quick test_b_signal_and_reject;
        Alcotest.test_case "accept with smaller buffer" `Quick test_accept_smaller_buffer;
        Alcotest.test_case "unadvertised pattern" `Quick test_unadvertised;
        Alcotest.test_case "unadvertise stops matching" `Quick test_unadvertise_stops_matching;
        Alcotest.test_case "negative arguments" `Quick test_negative_args_roundtrip;
      ] );
    ( "sodal.handler",
      [
        Alcotest.test_case "accept_current outside handler" `Quick
          test_accept_current_outside_handler;
        Alcotest.test_case "blocking request in handler" `Quick
          test_blocking_request_in_handler_raises;
        Alcotest.test_case "CLOSE defers arrivals" `Quick test_close_defers_arrivals;
        Alcotest.test_case "task-queue accept (ports)" `Quick test_task_queue_accept;
        Alcotest.test_case "MAXREQUESTS" `Quick test_maxrequests;
        Alcotest.test_case "non-blocking overlap" `Quick test_non_blocking_overlap;
        Alcotest.test_case "in-order delivery" `Quick test_ordering_same_server;
        Alcotest.test_case "DIE clears advertisements" `Quick test_die_then_unadvertised;
        Alcotest.test_case "getuniqueid unique" `Quick test_getuniqueid_unique;
      ] );
    ( "sodal.bqueue",
      [
        Alcotest.test_case "operations" `Quick test_bqueue;
        QCheck_alcotest.to_alcotest prop_bqueue_fifo;
      ] );
  ]
