(* The five programmed examples of §4.4 as end-to-end integration tests. *)

module Bounded_buffer = Soda_examples.Bounded_buffer
module Four_way_buffer = Soda_examples.Four_way_buffer
module Dining_philosophers = Soda_examples.Dining_philosophers
module Readers_writers = Soda_examples.Readers_writers
module File_server = Soda_examples.File_server

let test_bounded_buffer () =
  let s = Bounded_buffer.run ~seed:11 () in
  Alcotest.(check int) "nothing lost" s.Bounded_buffer.produced s.Bounded_buffer.consumed;
  Alcotest.(check int) "everything produced" 80 s.Bounded_buffer.produced;
  Alcotest.(check bool) "per-producer FIFO" true s.Bounded_buffer.in_order;
  Alcotest.(check bool) "backpressure engaged" true (s.Bounded_buffer.backpressure_closes > 0)

let test_bounded_buffer_seeds () =
  List.iter
    (fun seed ->
      let s = Bounded_buffer.run ~seed ~producers:3 ~items_per_producer:10 () in
      Alcotest.(check int) "nothing lost" s.Bounded_buffer.produced s.Bounded_buffer.consumed;
      Alcotest.(check bool) "fifo" true s.Bounded_buffer.in_order)
    [ 1; 2; 3 ]

let test_four_way_buffer () =
  let s = Four_way_buffer.run ~seed:23 () in
  Alcotest.(check int) "A->B complete" 60 s.Four_way_buffer.transferred_a_to_b;
  Alcotest.(check int) "B->A complete" 60 s.Four_way_buffer.transferred_b_to_a;
  Alcotest.(check bool) "flow control engaged" true (s.Four_way_buffer.flow_stops > 0);
  Alcotest.(check int) "no characters lost" 0 s.Four_way_buffer.lost

let test_dining_philosophers () =
  let s = Dining_philosophers.run ~seed:31 ~duration_s:90.0 () in
  Array.iteri
    (fun i meals ->
      Alcotest.(check bool) (Printf.sprintf "philosopher %d ate" i) true (meals > 0))
    s.Dining_philosophers.meals;
  Alcotest.(check bool) "the forced deadlock was broken" true
    (s.Dining_philosophers.deadlocks_broken >= 1);
  Alcotest.(check int) "no adjacent philosophers ate together" 0
    s.Dining_philosophers.safety_violations;
  Alcotest.(check int) "no false deadlock declarations" 0
    s.Dining_philosophers.false_deadlocks

let test_readers_writers () =
  let s = Readers_writers.run ~seed:41 () in
  Alcotest.(check int) "all reads done" 48 s.Readers_writers.reads;
  Alcotest.(check int) "all writes done" 24 s.Readers_writers.writes;
  Alcotest.(check int) "exclusion held" 0 s.Readers_writers.exclusion_violations;
  Alcotest.(check bool) "readers actually shared" true
    (s.Readers_writers.max_concurrent_readers >= 2)

let test_file_server () =
  let s = File_server.run ~seed:51 () in
  Alcotest.(check int) "all files" 3 s.File_server.files_written;
  Alcotest.(check bool) "data integrity" true s.File_server.round_trips_ok;
  Alcotest.(check int) "reads match writes" s.File_server.bytes_written
    s.File_server.bytes_read_back;
  Alcotest.(check bool) "closed fd rejected" true s.File_server.stale_fd_rejected

let suites =
  [
    ( "examples",
      [
        Alcotest.test_case "two-way bounded buffer (§4.4.1)" `Quick test_bounded_buffer;
        Alcotest.test_case "bounded buffer across seeds" `Slow test_bounded_buffer_seeds;
        Alcotest.test_case "four-way bounded buffer (§4.4.2)" `Quick test_four_way_buffer;
        Alcotest.test_case "dining philosophers (§4.4.3)" `Slow test_dining_philosophers;
        Alcotest.test_case "readers and writers (§4.4.4)" `Quick test_readers_writers;
        Alcotest.test_case "file service (§4.4.5)" `Quick test_file_server;
      ] );
  ]
