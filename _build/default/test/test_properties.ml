(* Property-based tests (qcheck) on the protocol and core data structures. *)

open Helpers
module Bus = Soda_net.Bus

let patt = Pattern.well_known 0o333

(* The central reliability property, for any seed and loss rate up to 30%:
   every signal eventually completes with SOME status; the deliveries at
   the server are a subsequence of the issue order with no duplicates and
   no inventions; every COMPLETED op was delivered (exactly once). An op
   may legitimately complete CRASHED under extreme loss -- the protocol's
   retransmissions are bounded (max_retrans, §5.2.2) -- and such an op may
   or may not have been delivered (the loss may have eaten the ack). *)
let prop_exactly_once_any_seed =
  QCheck.Test.make ~name:"transport: exactly-once in-order delivery under loss" ~count:25
    QCheck.(pair small_int (int_bound 30))
    (fun (seed, loss_pct) ->
      let net, kernels = make_net ~seed:(seed + 1) 2 in
      Bus.set_loss_rate (Network.bus net) (float_of_int loss_pct /. 100.0);
      let seen = ref [] in
      ignore
        (Sodal.attach (List.nth kernels 0)
           {
             Sodal.default_spec with
             init = (fun env ~parent:_ -> Sodal.advertise env patt);
             on_request =
               (fun env info ->
                 seen := info.Sodal.arg :: !seen;
                 ignore (Sodal.accept_current_signal env ~arg:0));
           });
      let statuses = Hashtbl.create 8 in
      let n = 8 in
      ignore
        (Sodal.attach (List.nth kernels 1)
           {
             Sodal.default_spec with
             task =
               (fun env ->
                 let sv = Sodal.server ~mid:0 ~pattern:patt in
                 for i = 1 to n do
                   let c = Sodal.b_signal env sv ~arg:i in
                   Hashtbl.replace statuses i c.Sodal.status
                 done);
           });
      ignore (Network.run ~until:600_000_000 net);
      let deliveries = List.rev !seen in
      let all_completed = Hashtbl.length statuses = n in
      let no_duplicates =
        List.length deliveries = List.length (List.sort_uniq compare deliveries)
      in
      let in_order = List.sort compare deliveries = deliveries in
      let consistent =
        List.for_all
          (fun i ->
            match Hashtbl.find_opt statuses i with
            | Some Sodal.Comp_ok -> List.mem i deliveries
            | Some Sodal.Comp_crashed -> true  (* delivered at most once *)
            | Some (Sodal.Comp_rejected | Sodal.Comp_unadvertised) | None -> false)
          (List.init n (fun i -> i + 1))
      in
      let no_inventions = List.for_all (fun d -> d >= 1 && d <= n) deliveries in
      all_completed && no_duplicates && in_order && consistent && no_inventions)

(* Data integrity: what the client PUTs is exactly what the server's accept
   buffer receives, for arbitrary payloads, under corruption injection
   (CRC must catch every damaged frame). *)
let prop_payload_integrity =
  QCheck.Test.make ~name:"transport: payload integrity under corruption" ~count:20
    QCheck.(pair small_int (string_of_size Gen.(1 -- 800)))
    (fun (seed, payload) ->
      let net, kernels = make_net ~seed:(seed + 13) 2 in
      Bus.set_corruption_rate (Network.bus net) 0.15;
      let received = ref "" in
      ignore
        (Sodal.attach (List.nth kernels 0)
           {
             Sodal.default_spec with
             init = (fun env ~parent:_ -> Sodal.advertise env patt);
             on_request =
               (fun env info ->
                 let into = Bytes.create info.Sodal.put_size in
                 let status, got = Sodal.accept_current_put env ~arg:0 ~into in
                 if status = Types.Accept_success then
                   received := Bytes.sub_string into 0 got);
           });
      let ok = ref false in
      ignore
        (Sodal.attach (List.nth kernels 1)
           {
             Sodal.default_spec with
             task =
               (fun env ->
                 let c =
                   Sodal.b_put env (Sodal.server ~mid:0 ~pattern:patt) ~arg:0
                     (Bytes.of_string payload)
                 in
                 ok := c.Sodal.status = Sodal.Comp_ok);
           });
      ignore (Network.run ~until:600_000_000 net);
      (* A completed op must have delivered the exact payload; a (rare)
         bounded-retransmission failure must not have corrupted anything:
         either nothing arrived or the intact payload did. *)
      if !ok then !received = payload else !received = "" || !received = payload)

(* Determinism: the same seed must produce the identical event history
   (final virtual time and packet count). *)
let prop_determinism =
  QCheck.Test.make ~name:"engine: identical seeds give identical runs" ~count:15
    QCheck.small_int
    (fun seed ->
      let run_once () =
        let net, kernels = make_net ~seed:(seed + 3) 2 in
        Bus.set_loss_rate (Network.bus net) 0.1;
        ignore (echo_server (List.nth kernels 0) patt);
        let finish = ref 0 in
        ignore
          (Sodal.attach (List.nth kernels 1)
             {
               Sodal.default_spec with
               task =
                 (fun env ->
                   for i = 1 to 5 do
                     ignore (Sodal.b_signal env (Sodal.server ~mid:0 ~pattern:patt) ~arg:i)
                   done;
                   finish := Sodal.now env);
             });
        ignore (Network.run ~until:600_000_000 net);
        (!finish, Soda_sim.Stats.counter (Bus.stats (Network.bus net)) "bus.frames_sent")
      in
      run_once () = run_once ())

(* Pattern mint: ids unique across mints with distinct serials and within
   a mint, regardless of boot clock. *)
let prop_mint_unique =
  QCheck.Test.make ~name:"pattern mint: no collisions across serials/clocks" ~count:100
    QCheck.(triple (int_bound 255) (int_bound 255) (int_bound 1_000_000))
    (fun (serial_a, serial_b, clock) ->
      QCheck.assume (serial_a <> serial_b);
      let a = Pattern.Mint.create ~serial:serial_a ~boot_clock:clock in
      let b = Pattern.Mint.create ~serial:serial_b ~boot_clock:clock in
      let ids =
        List.concat_map
          (fun mint -> List.init 20 (fun _ -> Pattern.to_int (Pattern.Mint.fresh_pattern mint)))
          [ a; b ]
      in
      List.length (List.sort_uniq compare ids) = 40)

(* Minted patterns never collide with well-known or reserved name spaces. *)
let prop_mint_namespace =
  QCheck.Test.make ~name:"pattern mint: minted ids outside well-known space" ~count:100
    QCheck.(pair (int_bound 255) (int_bound 1_000_000))
    (fun (serial, clock) ->
      let mint = Pattern.Mint.create ~serial ~boot_clock:clock in
      List.for_all
        (fun _ ->
          let p = Pattern.Mint.fresh_pattern mint in
          (not (Pattern.is_well_known p)) && not (Pattern.is_reserved p))
        (List.init 10 Fun.id))

(* Cost model: derived Delta-t intervals keep their defining inequalities
   for any sensible parameterisation. *)
let prop_cost_intervals =
  QCheck.Test.make ~name:"cost model: delta-t interval ordering" ~count:100
    QCheck.(triple (int_range 1000 100_000) (int_range 1 8) (int_range 1000 100_000))
    (fun (retrans, max_retrans, mpl) ->
      let cost =
        {
          Cost.default with
          Cost.retrans_interval_us = retrans;
          max_retrans;
          mpl_us = mpl;
        }
      in
      let r = Cost.r_us cost in
      let delta_t = Cost.delta_t_us cost in
      let expiry = Cost.record_expiry_us cost in
      let quarantine = Cost.crash_quarantine_us cost in
      r >= retrans
      && delta_t = mpl + r + cost.Cost.ack_grace_us
      && expiry = mpl + delta_t
      && quarantine = (2 * mpl) + delta_t
      && quarantine > expiry)

let suites =
  [
    ( "properties",
      [
        QCheck_alcotest.to_alcotest prop_exactly_once_any_seed;
        QCheck_alcotest.to_alcotest prop_payload_integrity;
        QCheck_alcotest.to_alcotest prop_determinism;
        QCheck_alcotest.to_alcotest prop_mint_unique;
        QCheck_alcotest.to_alcotest prop_mint_namespace;
        QCheck_alcotest.to_alcotest prop_cost_intervals;
      ] );
  ]
