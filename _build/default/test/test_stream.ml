(* Multipacket streams (§6.17.4), RMR test-and-set locks, RPC failover. *)

open Helpers
module Stream = Soda_facilities.Stream
module Rmr = Soda_facilities.Rmr
module Rpc = Soda_facilities.Rpc
module Bus = Soda_net.Bus

let patt = Pattern.well_known 0o444

let test_stream_large_block () =
  let net, kernels = make_net 2 in
  let blocks = ref [] in
  ignore
    (Sodal.attach (List.nth kernels 0)
       (Stream.sink ~pattern:patt
          ~on_block:(fun _ ~src block -> blocks := (src, Bytes.to_string block) :: !blocks)
          ()));
  (* 20 000 bytes: far beyond the 4096-byte kernel buffer. *)
  let payload = String.init 20_000 (fun i -> Char.chr (i mod 251)) in
  let sent = ref false in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             match
               Stream.send env (Sodal.server ~mid:0 ~pattern:patt)
                 (Bytes.of_string payload)
             with
             | Ok () -> sent := true
             | Error _ -> ());
       });
  run net;
  Alcotest.(check bool) "sender completed" true !sent;
  match !blocks with
  | [ (1, data) ] -> Alcotest.(check bool) "block intact" true (data = payload)
  | _ -> Alcotest.fail "expected exactly one reassembled block"

let test_stream_small_chunks_under_loss () =
  let net, kernels = make_net ~seed:77 2 in
  Bus.set_loss_rate (Network.bus net) 0.15;
  let blocks = ref [] in
  ignore
    (Sodal.attach (List.nth kernels 0)
       (Stream.sink ~pattern:patt
          ~on_block:(fun _ ~src:_ block -> blocks := Bytes.to_string block :: !blocks)
          ()));
  let payload = String.init 3000 (fun i -> Char.chr (i mod 100 + 32)) in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             ignore
               (Stream.send env (Sodal.server ~mid:0 ~pattern:patt) ~chunk_bytes:200
                  (Bytes.of_string payload)));
       });
  run ~horizon:600.0 net;
  Alcotest.(check (list string)) "reassembled despite loss" [ payload ] !blocks

let test_stream_concurrent_senders () =
  let net, kernels = make_net 3 in
  let blocks = ref [] in
  ignore
    (Sodal.attach (List.nth kernels 0)
       (Stream.sink ~pattern:patt
          ~on_block:(fun _ ~src block -> blocks := (src, Bytes.length block) :: !blocks)
          ()));
  let sender kernel size =
    ignore
      (Sodal.attach kernel
         {
           Sodal.default_spec with
           task =
             (fun env ->
               ignore
                 (Stream.send env (Sodal.server ~mid:0 ~pattern:patt) ~chunk_bytes:500
                    (Bytes.create size)));
         })
  in
  sender (List.nth kernels 1) 4000;
  sender (List.nth kernels 2) 6500;
  run net;
  Alcotest.(check (list (pair int int))) "per-sender reassembly independent"
    [ (1, 4000); (2, 6500) ]
    (List.sort compare !blocks)

let test_stream_receiver_gone () =
  let net, kernels = make_net 2 in
  ignore (List.nth kernels 0);
  let result = ref (Ok ()) in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             result := Stream.send env (Sodal.server ~mid:0 ~pattern:patt) (Bytes.create 5000));
       });
  run ~horizon:600.0 net;
  Alcotest.(check bool) "receiver gone reported" true (!result = Error Stream.Receiver_gone)

(* ---- rmr test-and-set --------------------------------------------------------- *)

let test_rmr_test_and_set () =
  let net, kernels = make_net 2 in
  let spec, memory = Rmr.spec ~pattern:patt ~words:8 in
  ignore (Sodal.attach (List.nth kernels 0) spec);
  let olds = ref [] in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             (match Rmr.test_and_set env sv ~addr:2 0xBEEF with
              | Ok old -> olds := old :: !olds
              | Error _ -> Alcotest.fail "tas 1 failed");
             match Rmr.test_and_set env sv ~addr:2 0x1234 with
             | Ok old -> olds := old :: !olds
             | Error _ -> Alcotest.fail "tas 2 failed");
       });
  run net;
  Alcotest.(check (list int)) "swap returns previous value" [ 0; 0xBEEF ] (List.rev !olds);
  Alcotest.(check int) "memory holds the last value" 0x12
    (Char.code (Bytes.get memory 4))

let test_rmr_lock_mutual_exclusion () =
  (* Two clients increment a remote counter under the TAS lock; without the
     lock the read-modify-write races would lose updates. *)
  let net, kernels = make_net 3 in
  let spec, memory = Rmr.spec ~pattern:patt ~words:8 in
  ignore (Sodal.attach (List.nth kernels 0) spec);
  let increments = 6 in
  let worker kernel =
    ignore
      (Sodal.attach kernel
         {
           Sodal.default_spec with
           task =
             (fun env ->
               let sv = Sodal.server ~mid:0 ~pattern:patt in
               for _ = 1 to increments do
                 (match Rmr.lock env sv ~addr:0 with
                  | Ok () -> ()
                  | Error _ -> Alcotest.fail "lock failed");
                 (match Rmr.peek env sv ~addr:1 ~words:1 with
                  | Ok b ->
                    let v = (Char.code (Bytes.get b 0) lsl 8) lor Char.code (Bytes.get b 1) in
                    let nb = Bytes.create 2 in
                    Bytes.set nb 0 (Char.chr (((v + 1) lsr 8) land 0xFF));
                    Bytes.set nb 1 (Char.chr ((v + 1) land 0xFF));
                    ignore (Rmr.poke env sv ~addr:1 nb)
                  | Error _ -> Alcotest.fail "peek failed");
                 ignore (Rmr.unlock env sv ~addr:0)
               done;
               Sodal.serve env);
         })
  in
  worker (List.nth kernels 1);
  worker (List.nth kernels 2);
  ignore (Network.run ~until:600_000_000 net);
  (* the served memory is directly observable by the test harness *)
  let counter =
    (Char.code (Bytes.get memory 2) lsl 8) lor Char.code (Bytes.get memory 3)
  in
  Alcotest.(check int) "no lost updates" (2 * increments) counter

(* ---- rpc failover ----------------------------------------------------------------- *)

let test_rpc_call_any_failover () =
  let net, kernels = make_net 4 in
  (* server 0 advertises the pattern but never answers its GET (its task
     hangs); server 1 works. The caller must fail over. *)
  ignore
    (Sodal.attach (List.nth kernels 0)
       {
         Sodal.default_spec with
         init = (fun env ~parent:_ -> Sodal.advertise env patt);
         on_request =
           (fun env info ->
             (* accept the params so the caller proceeds to its GET, then
                crash before answering *)
             if info.Sodal.put_size > 0 then begin
               let into = Bytes.create info.Sodal.put_size in
               ignore (Sodal.accept_current_put env ~arg:0 ~into)
             end);
         task =
           (fun env ->
             Sodal.compute env 200_000;
             Kernel.crash (Sodal.kernel env);
             Sodal.serve env);
       });
  ignore
    (Sodal.attach (List.nth kernels 1)
       (Rpc.spec [ (patt, fun _ params -> Bytes.cat params (Bytes.of_string "!")) ]));
  let result = ref None in
  ignore
    (Sodal.attach (List.nth kernels 3)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             result := Some (Rpc.call_any env ~pattern:patt (bytes_of_string "hi") ~result_size:8));
       });
  run ~horizon:900.0 net;
  match !result with
  | Some (Ok (data, mid)) ->
    Alcotest.(check string) "answered" "hi!" (Bytes.to_string data);
    Alcotest.(check int) "by the healthy server" 1 mid
  | Some (Error _) -> Alcotest.fail "call_any failed"
  | None -> Alcotest.fail "caller never finished"

let suites =
  [
    ( "stream",
      [
        Alcotest.test_case "large block" `Quick test_stream_large_block;
        Alcotest.test_case "small chunks under loss" `Quick test_stream_small_chunks_under_loss;
        Alcotest.test_case "concurrent senders" `Quick test_stream_concurrent_senders;
        Alcotest.test_case "receiver gone" `Quick test_stream_receiver_gone;
      ] );
    ( "rmr.sync",
      [
        Alcotest.test_case "test-and-set" `Quick test_rmr_test_and_set;
        Alcotest.test_case "lock mutual exclusion" `Quick test_rmr_lock_mutual_exclusion;
      ] );
    ("rpc.failover", [ Alcotest.test_case "call_any" `Quick test_rpc_call_any_failover ]);
  ]
