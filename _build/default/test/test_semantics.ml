(* Edge cases of the kernel-client contract: handler state machine subtleties
   (§3.3.4, §3.7.5), completion-before-request ordering, SYSTEM pattern
   administration, CSP corner cases, asynchronous receipt (§6.6). *)

open Helpers
module Csp = Soda_facilities.Csp

let patt = Pattern.well_known 0o666
let patt2 = Pattern.well_known 0o667

(* §3.7.5: "If client C1 issues an ACCEPT followed by a REQUEST to another
   client C2, the ACCEPT will cause an invocation of C2's handler before
   the REQUEST will." *)
let test_accept_before_request_ordering () =
  let net, kernels = make_net 2 in
  let k1 = List.nth kernels 0 and k2 = List.nth kernels 1 in
  let events = ref [] in
  (* C2: issues a request to C1 (which C1 will accept late), then watches
     the order of its own handler invocations. *)
  ignore
    (Sodal.attach k2
       {
         Sodal.init = (fun env ~parent:_ -> Sodal.advertise env patt2);
         on_request =
           (fun env _ ->
             events := `Request :: !events;
             ignore (Sodal.accept_current_signal env ~arg:0));
         on_completion = (fun _ _ -> events := `Completion :: !events);
         task =
           (fun env ->
             ignore (Sodal.signal env (Sodal.server ~mid:0 ~pattern:patt) ~arg:0);
             Sodal.serve env);
       });
  (* C1: waits for C2's request, then does ACCEPT immediately followed by a
     REQUEST back to C2. *)
  let asker = ref None in
  ignore
    (Sodal.attach k1
       {
         Sodal.default_spec with
         init = (fun env ~parent:_ -> Sodal.advertise env patt);
         on_request = (fun _ info -> asker := Some info.Sodal.asker);
         task =
           (fun env ->
             while !asker = None do
               Sodal.idle env
             done;
             Sodal.compute env 50_000;
             ignore (Sodal.accept_signal env (Option.get !asker) ~arg:0);
             ignore (Sodal.signal env (Sodal.server ~mid:1 ~pattern:patt2) ~arg:0);
             Sodal.serve env);
       });
  run net;
  Alcotest.(check bool) "completion handler ran before request handler" true
    (List.rev !events = [ `Completion; `Request ])

(* Completion interrupts queue while the handler is BUSY and drain at
   ENDHANDLER, oldest first. *)
let test_queued_completions_drain_in_order () =
  let net, kernels = make_net 2 in
  let k0 = List.nth kernels 0 in
  let askers = ref [] in
  ignore
    (Sodal.attach k0
       {
         Sodal.default_spec with
         init = (fun env ~parent:_ -> Sodal.advertise env patt);
         on_request = (fun _ info -> askers := info.Sodal.asker :: !askers);
         task =
           (fun env ->
             while List.length !askers < 3 do
               Sodal.idle env
             done;
             (* accept all three quickly: the client's completions will
                race its busy handler *)
             List.iter
               (fun asker -> ignore (Sodal.accept_signal env asker ~arg:0))
               (List.rev !askers);
             Sodal.serve env);
       });
  let completions = ref [] in
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         on_completion =
           (fun env c ->
             (* a slow completion handler forces the rest to queue *)
             Sodal.compute env 20_000;
             completions := c.Sodal.tid :: !completions);
         task =
           (fun env ->
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             let t1 = Sodal.signal env sv ~arg:1 in
             let t2 = Sodal.signal env sv ~arg:2 in
             let t3 = Sodal.signal env sv ~arg:3 in
             while List.length !completions < 3 do
               Sodal.idle env
             done;
             Alcotest.(check (list int)) "oldest completion first" [ t1; t2; t3 ]
               (List.rev !completions);
             Sodal.serve env);
       });
  run net;
  Alcotest.(check int) "three completions" 3 (List.length !completions)

(* CLOSE issued from within the handler takes effect at ENDHANDLER: the
   next arrival waits until the task re-OPENs. *)
let test_close_from_handler () =
  let net, kernels = make_net 2 in
  let k0 = List.nth kernels 0 in
  let deliveries = ref [] in
  ignore
    (Sodal.attach k0
       {
         Sodal.default_spec with
         init = (fun env ~parent:_ -> Sodal.advertise env patt);
         on_request =
           (fun env info ->
             deliveries := (info.Sodal.arg, Sodal.now env) :: !deliveries;
             ignore (Sodal.accept_current_signal env ~arg:0);
             (* close ourselves; the task reopens after one second *)
             Sodal.close_handler env);
         task =
           (fun env ->
             while true do
               Sodal.compute env 1_000_000;
               Sodal.open_handler env
             done);
       });
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             ignore (Sodal.b_signal env sv ~arg:1);
             ignore (Sodal.b_signal env sv ~arg:2);
             Sodal.serve env);
       });
  ignore (Network.run ~until:30_000_000 net);
  match List.rev !deliveries with
  | [ (1, t1); (2, t2) ] ->
    Alcotest.(check bool) "second delivery held until reopen" true (t2 - t1 > 900_000)
  | _ -> Alcotest.fail "expected exactly two deliveries"

(* §6.6 asynchronous receipt: the handler updates a variable the task is
   using, with no polling for messages in the task (the checkers-program
   pattern). *)
let test_async_update_without_polling () =
  let net, kernels = make_net 2 in
  let k0 = List.nth kernels 0 in
  let best = ref 100 in
  let observed = ref [] in
  ignore
    (Sodal.attach k0
       {
         Sodal.default_spec with
         init = (fun env ~parent:_ -> Sodal.advertise env patt);
         on_request =
           (fun env info ->
             (* update messages carry a better bound in the argument *)
             if info.Sodal.arg < !best then best := info.Sodal.arg;
             ignore (Sodal.accept_current_signal env ~arg:0));
         task =
           (fun env ->
             (* a long computation that reads [best] as it goes; it never
                polls for messages *)
             for _ = 1 to 20 do
               Sodal.compute env 10_000;
               observed := !best :: !observed
             done;
             Sodal.serve env);
       });
  ignore
    (Sodal.attach (List.nth kernels 1)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let sv = Sodal.server ~mid:0 ~pattern:patt in
             Sodal.compute env 40_000;
             ignore (Sodal.b_signal env sv ~arg:42);
             Sodal.compute env 40_000;
             ignore (Sodal.b_signal env sv ~arg:7));
       });
  run net;
  let obs = List.rev !observed in
  Alcotest.(check bool) "bound improved asynchronously during computation" true
    (List.hd obs = 100 && List.exists (fun v -> v = 42) obs
     && List.nth obs (List.length obs - 1) = 7)

(* SYSTEM pattern (§3.5.4): machine 0 adds a boot kind and replaces the
   KILL pattern network-wide. *)
let test_system_administration () =
  let net, kernels = make_net 3 in
  let k_target = List.nth kernels 2 in
  ignore (echo_server k_target patt);
  let encode_pattern p =
    let v = Pattern.to_int p in
    Bytes.init 6 (fun i -> Char.chr ((v lsr (8 * (5 - i))) land 0xFF))
  in
  let new_kill = Pattern.well_known 0o7777 in
  (* well-known but will be installed as the kill action *)
  let phase = ref [] in
  ignore
    (Sodal.attach (List.nth kernels 0)
       {
         Sodal.default_spec with
         task =
           (fun env ->
             let system = Sodal.server ~mid:2 ~pattern:Pattern.system_pattern in
             (* 3 = replace the KILL pattern *)
             let c = Sodal.b_put env system ~arg:3 (encode_pattern new_kill) in
             phase := `Replaced :: !phase;
             Alcotest.(check bool) "system op accepted" true (c.Sodal.status = Sodal.Comp_ok);
             Sodal.compute env 100_000;
             (* the old KILL pattern no longer works... *)
             let c_old =
               Sodal.b_signal env (Sodal.server ~mid:2 ~pattern:Pattern.kill_pattern) ~arg:0
             in
             Alcotest.(check bool) "old kill dead" true
               (c_old.Sodal.status = Sodal.Comp_unadvertised);
             (* ...the new one kills the client *)
             ignore (Sodal.b_signal env (Sodal.server ~mid:2 ~pattern:new_kill) ~arg:0);
             Sodal.compute env 100_000;
             let c2 = Sodal.b_signal env (Sodal.server ~mid:2 ~pattern:patt) ~arg:0 in
             Alcotest.(check bool) "client killed via replaced pattern" true
               (c2.Sodal.status = Sodal.Comp_unadvertised);
             phase := `Killed :: !phase;
             Sodal.serve env);
       });
  run ~horizon:600.0 net;
  Alcotest.(check int) "both phases ran" 2 (List.length !phase)

(* CSP: an alternative whose only peer has terminated fails (select
   returns None), per the CSP guard-failure rule. *)
let test_csp_dead_peer_fails_guard () =
  let net, kernels = make_net 2 in
  ignore (List.nth kernels 0);
  (* no CSP process on mid 0 *)
  let outcome = ref (Some { Csp.index = 0; peer = 0; data = Bytes.empty }) in
  let _p, spec =
    Csp.make ~task:(fun env p ->
        outcome := Csp.select env p [ Csp.Output { peer = 0; chan = 1; data = Bytes.empty } ];
        Sodal.serve env)
  in
  ignore (Sodal.attach (List.nth kernels 1) spec);
  ignore (Network.run ~until:120_000_000 net);
  Alcotest.(check bool) "alternative failed" true (!outcome = None)

let suites =
  [
    ( "semantics",
      [
        Alcotest.test_case "ACCEPT handler before REQUEST handler" `Quick
          test_accept_before_request_ordering;
        Alcotest.test_case "queued completions drain in order" `Quick
          test_queued_completions_drain_in_order;
        Alcotest.test_case "CLOSE from handler" `Quick test_close_from_handler;
        Alcotest.test_case "asynchronous receipt (§6.6)" `Quick
          test_async_update_without_polling;
        Alcotest.test_case "SYSTEM pattern administration" `Quick test_system_administration;
        Alcotest.test_case "CSP dead peer fails the guard" `Quick
          test_csp_dead_peer_fails_guard;
      ] );
  ]
